#!/usr/bin/env python
"""Gate on a perf-trajectory comparison: baseline JSON vs current JSON.

Usage::

    python benchmarks/check_regress.py BASELINE.json CURRENT.json \
        [--threshold 0.25] [--min-ms 1.0] [--exact disputed_packets] \
        [--speedup critical_path_speedup] [--wall-speedup speedup] \
        [--allow-missing-rows]

Compares two trajectory documents written by the benchmark harness (see
:mod:`repro.bench.trajectory`): rows are matched by ``key``; timing
metrics (``*_ms``/``*_us``/``*_s``) in the current run may be at most
``threshold`` slower than the baseline; fields named with ``--exact``
must match exactly (use it for counts that prove the math didn't drift,
e.g. ``disputed_packets``).  Exit status: 0 clean, 1 regressions found,
2 usage/IO error.

CI runs this against the committed ``BENCH_micro.json`` /
``BENCH_fig13.json`` anchors with a generous threshold (runner timing is
noisy); refresh the anchors by re-running the benchmarks at paper scale
on a quiet machine and committing the result.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.trajectory import compare_trajectories, load_trajectory


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="trajectory JSON of the reference run")
    parser.add_argument("current", help="trajectory JSON of the run under test")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed slowdown fraction (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-ms",
        type=float,
        default=1.0,
        help="ignore timings where both sides are under this many ms",
    )
    parser.add_argument(
        "--exact",
        action="append",
        default=[],
        metavar="FIELD",
        help="row field that must match exactly (repeatable)",
    )
    parser.add_argument(
        "--speedup",
        action="append",
        default=[],
        metavar="FIELD",
        help=(
            "higher-is-better row field that may fall at most"
            " --threshold below the baseline (repeatable)"
        ),
    )
    parser.add_argument(
        "--wall-speedup",
        action="append",
        default=[],
        metavar="FIELD",
        help=(
            "like --speedup, but skipped (with a logged reason) when"
            " either side is core-starved: current rows whose 'jobs'"
            " exceed the usable cores recorded in 'effective_cores'"
            " cannot win the gate, and baseline rows recorded that way"
            " are not a meaningful wall-clock reference (repeatable)"
        ),
    )
    parser.add_argument(
        "--allow-missing-rows",
        action="store_true",
        help=(
            "report baseline rows absent from the current run as notes"
            " instead of regressions (for quick-scale runs that measure"
            " a subset of the anchor's sizes)"
        ),
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_trajectory(args.baseline)
        current = load_trajectory(args.current)
    except (OSError, ValueError) as error:
        print(f"check_regress: {error}", file=sys.stderr)
        return 2

    if baseline.get("machine") != current.get("machine"):
        print(
            "check_regress: note: machine fingerprints differ"
            f" ({baseline.get('machine')} vs {current.get('machine')});"
            " timings are only roughly comparable"
        )

    notes: list[str] = []
    regressions = compare_trajectories(
        baseline,
        current,
        threshold=args.threshold,
        min_ms=args.min_ms,
        exact=tuple(args.exact),
        speedups=tuple(args.speedup),
        wall_speedups=tuple(args.wall_speedup),
        notes=notes,
    )
    if args.allow_missing_rows:
        for regression in regressions:
            if regression.kind == "missing-row":
                notes.append(
                    f"{regression.row_key}: not measured in current run"
                    " (allowed by --allow-missing-rows)"
                )
        regressions = [r for r in regressions if r.kind != "missing-row"]
    for note in notes:
        print(f"check_regress: note: {note}")
    compared = len(baseline.get("rows", []))
    if not regressions:
        print(
            f"check_regress: OK — {compared} baseline rows within"
            f" {args.threshold:.0%} of {Path(args.baseline).name}"
        )
        return 0
    print(
        f"check_regress: {len(regressions)} regression(s) vs"
        f" {Path(args.baseline).name} (threshold {args.threshold:.0%}):"
    )
    for regression in regressions:
        print(f"  - {regression.describe()}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
