"""Regenerates the paper's running example end to end (Tables 1-7).

Tables 1/2: the two teams' firewalls.  Table 3: all functional
discrepancies.  Table 4: the resolution.  Table 5: the firewall generated
from the corrected FDD (Method 1).  Tables 6/7: the firewalls obtained by
patching each team's original (Method 2).  The benchmark times the full
comparison pipeline on the example; the report reproduces the tables.
"""

from __future__ import annotations

from conftest import bench_rounds

from repro import (
    aggregate_discrepancies,
    compare_firewalls,
    format_discrepancy_table,
    resolve_by_corrected_fdd,
    resolve_by_patching,
    resolve_with,
)
from repro.analysis import aggregate_resolutions
from repro.policy import to_table
from repro.synth import (
    paper_resolution_chooser,
    team_a_firewall,
    team_b_firewall,
)


def _run_example() -> str:
    team_a = team_a_firewall()
    team_b = team_b_firewall()
    raw = compare_firewalls(team_a, team_b)
    discrepancies = aggregate_discrepancies(raw)
    # Resolve at cell granularity (merged regions can straddle packets the
    # teams resolve differently), then merge for display.
    resolutions = resolve_with(raw, paper_resolution_chooser)
    method1 = resolve_by_corrected_fdd(team_a, team_b, resolutions)
    method2_a = resolve_by_patching(
        team_a, aggregate_resolutions(resolutions), base_is="a"
    )
    raw_ba = compare_firewalls(team_b, team_a)
    resolutions_ba = resolve_with(raw_ba, paper_resolution_chooser)
    method2_b = resolve_by_patching(
        team_b, aggregate_resolutions(resolutions_ba), base_is="a"
    )

    sections = [
        to_table(team_a, title="Table 1: firewall designed by Team A"),
        to_table(team_b, title="Table 2: firewall designed by Team B"),
        format_discrepancy_table(
            discrepancies,
            name_a="Team A",
            name_b="Team B",
            title="Table 3: functional discrepancies between Teams A and B",
        ),
        "Table 4: resolved discrepancies\n"
        + "\n".join(f"  {r.describe()}" for r in aggregate_resolutions(resolutions)),
        to_table(
            method1, title="Table 5: firewall generated from the corrected FDD"
        ),
        to_table(
            method2_a,
            title="Table 6: Team A's firewall patched with the corrections",
        ),
        to_table(
            method2_b,
            title="Table 7: Team B's firewall patched with the corrections",
        ),
    ]
    return "\n\n".join(sections)


def test_bench_paper_example_pipeline(benchmark, report_saver):
    """Time the comparison pipeline on the running example; emit Tables 1-7."""
    team_a = team_a_firewall()
    team_b = team_b_firewall()
    result = benchmark.pedantic(
        lambda: compare_firewalls(team_a, team_b),
        rounds=bench_rounds(10),
        iterations=1,
    )
    assert len(aggregate_discrepancies(result)) == 3
    report_saver("paper_example_tables", _run_example())
