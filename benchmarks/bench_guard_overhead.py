"""Guard layer overhead — guarded vs unguarded runs, identical outputs.

The guarded execution layer (``repro.guard``) threads budget checks
through every hot loop of the pipeline.  The design target is <3%
overhead when a budget is set but never trips: counter limits are single
integer compares and the wall clock is only polled every ``check_every``
ticks.  This benchmark measures that overhead on the paper's workloads
(the running example, Fig. 12's perturbed campus policy, and a Fig. 13
scale pair on the fast engine) and asserts the guarded runs produce
byte-identical discrepancy output.

Pure-Python timings at millisecond scale are noisy; the experiment takes
best-of-N per configuration and the assertion below allows slack over
the 3% design target to keep CI stable.  The archived report carries the
measured numbers and each guarded run's budget outcome record.
"""

from __future__ import annotations

from repro.bench import banner, bench_scale, guard_overhead_experiment, render_table
from repro.fdd import compare_firewalls
from repro.guard import Budget, GuardContext
from repro.synth import team_a_firewall, team_b_firewall


def test_bench_guard_overhead(benchmark, report_saver):
    rows = guard_overhead_experiment()

    for row in rows:
        assert row.identical_output, f"guarded output diverged on {row.workload}"
        assert row.outcome["exhausted"] is None

    table = render_table(
        ["workload", "engine", "unguarded (ms)", "guarded (ms)", "overhead (%)"],
        [
            (
                row.workload,
                row.engine,
                f"{row.unguarded_ms:.2f}",
                f"{row.guarded_ms:.2f}",
                f"{row.overhead_pct:+.2f}",
            )
            for row in rows
        ],
    )
    outcomes = "\n".join(
        f"  {row.workload}: {row.outcome}" for row in rows
    )
    report = "\n".join(
        [
            banner(
                "Guard overhead: budgets armed but never tripped",
                "target <3%; outputs asserted identical to unguarded runs",
            ),
            table,
            "budget outcomes (guarded runs):",
            outcomes,
        ]
    )
    report_saver("guard_overhead", report)

    # Wide noise margin for CI boxes; the design target of 3% is what the
    # archived best-of-N table above is for.
    worst = max(row.overhead_pct for row in rows)
    assert worst < 15.0, f"guard overhead {worst:.1f}% is out of hand"

    fw_a, fw_b = team_a_firewall(), team_b_firewall()
    budget = Budget(deadline_s=3600.0, max_nodes=10**12)
    benchmark.pedantic(
        lambda: compare_firewalls(fw_a, fw_b, guard=GuardContext(budget)),
        rounds=3 if bench_scale() == "paper" else 1,
        iterations=1,
    )
