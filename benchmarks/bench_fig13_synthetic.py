"""Fig. 13 — the three algorithms on independent synthetic firewall pairs.

The paper generates two firewalls per size point independently (rule
shapes per the real-life characteristics of [13]) and reports the average
runtime of construction, shaping, and comparison up to 3,000 rules per
firewall, observing totals under 5 seconds on a 1-GHz SunBlade with Java.

We regenerate the series with the scalable engine across the paper's full
size range and with the literal tree pipeline at the small end (the tree
pipeline's subgraph-replication constants are prohibitive in pure Python;
EXPERIMENTS.md discusses the engine split).  Expected shape: construction
dominates, growth is superlinear but tractable, and the largest point
completes in tens of seconds (Python) vs the paper's seconds (Java).
"""

from __future__ import annotations

from dataclasses import asdict

from conftest import bench_rounds

from repro.bench import (
    banner,
    bench_scale,
    fig13_experiment,
    fig13_parallel_experiment,
    render_series,
    render_table,
    timed_fast_comparison,
)
from repro.synth import generate_firewall_pair


def _rows_to_table(rows) -> str:
    return render_table(
        [
            "rules/firewall",
            "engine",
            "construction (ms)",
            "shaping (ms)",
            "comparison (ms)",
            "total (ms)",
            "difference paths",
        ],
        [
            (
                row.rules_per_firewall,
                row.engine,
                row.construction_ms,
                row.shaping_ms,
                row.comparison_ms,
                row.total_ms,
                row.difference_paths,
            )
            for row in rows
        ],
    )


def test_bench_fig13_fast_engine(benchmark, report_saver, json_saver):
    """The full Fig. 13 size range on the scalable engine."""
    rows = fig13_experiment(engine="fast", seed=13)
    json_saver(
        "fig13_fast",
        [
            {"key": f"fast-n{row.rules_per_firewall}", **asdict(row)}
            for row in rows
        ],
        meta={"seed": 13},
    )
    report = "\n".join(
        [
            banner(
                "Fig. 13 (synthetic firewalls of large sizes, scalable engine)",
                "workload: independent rule streams over a shared address pool, seed=13",
            ),
            _rows_to_table(rows),
            "",
            render_series(
                "total time (ms) vs rules per firewall",
                [row.rules_per_firewall for row in rows],
                [row.total_ms for row in rows],
            ),
        ]
    )
    report_saver("fig13_fast", report)
    fw_a, fw_b = generate_firewall_pair(200, seed=13)
    benchmark.pedantic(
        lambda: timed_fast_comparison(fw_a, fw_b),
        rounds=bench_rounds(3),
        iterations=1,
    )
    totals = [row.total_ms for row in rows]
    assert totals == sorted(totals) or max(totals) > 0  # monotone-ish growth


def test_bench_fig13_parallel_engine(benchmark, report_saver, json_saver):
    """Serial vs sharded engine on the Fig. 13 workload.

    Writes the committed trajectory anchor ``BENCH_fig13.json``.  The
    honest headline on a single-CPU runner is the *critical-path*
    speedup (available parallelism); the wall-clock ratio only reflects
    it when the machine has idle cores — both are recorded, along with
    the CPU count, so the numbers are interpretable anywhere.
    """
    jobs = 4
    rows = fig13_parallel_experiment(seed=13, jobs=jobs)
    assert all(row.parity for row in rows), "parallel/serial disputed counts differ"
    json_saver(
        "fig13_parallel",
        [
            {"key": f"parallel-n{row.rules_per_firewall}-j{row.jobs}", **asdict(row)}
            for row in rows
        ],
        meta={"seed": 13, "engine": "repro.parallel vs repro.fdd.fast"},
        anchor="fig13",
    )
    report = "\n".join(
        [
            banner(
                "Fig. 13 workload, serial vs sharded parallel engine",
                f"jobs={jobs}; same pairs/seed as the fast-engine series",
            ),
            render_table(
                [
                    "rules/firewall",
                    "shards",
                    "serial (ms)",
                    "parallel wall (ms)",
                    "construct max (ms)",
                    "publish (ms)",
                    "shard phase (ms)",
                    "wall speedup",
                    "critical-path speedup",
                    "parity",
                ],
                [
                    (
                        row.rules_per_firewall,
                        row.shards,
                        row.serial_ms,
                        row.parallel_wall_ms,
                        row.construct_ms_max,
                        row.publish_ms,
                        row.shard_wall_ms,
                        row.speedup,
                        row.critical_path_speedup,
                        row.parity,
                    )
                    for row in rows
                ],
            ),
        ]
    )
    report_saver("fig13_parallel", report)
    from repro.parallel import compare_parallel

    size = 200
    fw_a, fw_b = generate_firewall_pair(size, seed=13)
    benchmark.pedantic(
        lambda: compare_parallel(fw_a, fw_b, jobs=jobs),
        rounds=bench_rounds(3),
        iterations=1,
    )


def test_bench_fig13_reference_small(benchmark, report_saver):
    """The tree pipeline at the feasible small end, for cross-calibration."""
    sizes = (25, 50, 100) if bench_scale() == "paper" else (25,)
    rows = fig13_experiment(engine="reference", sizes=sizes, seed=13)
    from repro.bench import timed_comparison

    fw_a, fw_b = generate_firewall_pair(sizes[0], seed=13)
    benchmark.pedantic(
        lambda: timed_comparison(fw_a, fw_b),
        rounds=bench_rounds(3),
        iterations=1,
    )
    report = "\n".join(
        [
            banner(
                "Fig. 13 cross-check (reference tree pipeline, small sizes)",
                "literal Figs. 7/10/11 algorithms; same workload and seed as above",
            ),
            _rows_to_table(rows),
        ]
    )
    report_saver("fig13_reference_small", report)
    assert all(row.total_ms > 0 for row in rows)
