"""Ablation — sensitivity of FDD size and runtime to the field order.

Ordered FDDs fix a total order over packet fields (Definition 4.1); the
paper uses the natural header order but never claims it optimal.  This
ablation constructs FDDs for the same firewall under several field
orders and reports path/node counts and construction time per order —
quantifying how much the "design in FDDs of a different order" case of
Section 7.2 can cost or save.

Expected shape: orders that put low-fanout fields (protocol, source
port) near the root shrink the diagram; the default header order is
middling; no order changes semantics (asserted by sampling).
"""

from __future__ import annotations

import random
import time

from conftest import bench_rounds

from repro.bench import banner, bench_scale, render_table
from repro.fdd.fast import construct_fdd_fast
from repro.fields import PacketSampler
from repro.policy import Firewall, Predicate, Rule
from repro.synth import SyntheticFirewallGenerator

_ORDERS = {
    "paper (S,D,sp,dp,P)": ["src_ip", "dst_ip", "src_port", "dst_port", "protocol"],
    "reversed": ["protocol", "dst_port", "src_port", "dst_ip", "src_ip"],
    "ports first": ["src_port", "dst_port", "protocol", "src_ip", "dst_ip"],
    "dst-centric": ["dst_ip", "dst_port", "protocol", "src_ip", "src_port"],
}


def _reorder_firewall(firewall: Firewall, names: list[str]) -> Firewall:
    schema = firewall.schema.reordered(names)
    rules = []
    for rule in firewall.rules:
        sets = tuple(rule.predicate.field_set(name) for name in names)
        rules.append(Rule(Predicate(schema, sets), rule.decision))
    return Firewall(schema, rules)


def test_bench_field_order_ablation(benchmark, report_saver):
    size = 300 if bench_scale() == "paper" else 60
    firewall = SyntheticFirewallGenerator(seed=17).generate(size)
    sampler = PacketSampler(firewall.schema, seed=17)
    probes = sampler.uniform_many(200)

    rows = []
    reference_decisions = [firewall(p) for p in probes]
    for label, names in _ORDERS.items():
        reordered = _reorder_firewall(firewall, names)
        start = time.perf_counter()
        fdd = construct_fdd_fast(reordered)
        elapsed_ms = (time.perf_counter() - start) * 1000
        stats = fdd.stats()
        # Semantics must be order-independent.
        index = {name: i for i, name in enumerate(names)}
        for packet, expected in zip(probes, reference_decisions):
            remapped = tuple(
                packet[firewall.schema.index_of(name)] for name in names
            )
            assert fdd.evaluate(remapped) == expected
        rows.append((label, stats.nodes, stats.paths, elapsed_ms))

    report = "\n".join(
        [
            banner(
                "Ablation: field order vs FDD size (same 300-rule firewall)",
                "construction via the scalable engine; semantics asserted equal",
            ),
            render_table(
                ["field order", "nodes", "paths", "construction (ms)"], rows
            ),
        ]
    )
    report_saver("ablation_field_order", report)

    benchmark.pedantic(
        lambda: construct_fdd_fast(firewall),
        rounds=bench_rounds(3),
        iterations=1,
    )
