"""Fig. 12 — comparing a real-life-sized firewall against perturbed copies.

The paper perturbs two real-life firewalls (661 and 42 rules) by the
Section 8.2.1 model — select x% of rules, flip a random fraction of the
selected decisions, delete the rest — and plots the per-phase runtime of
the three algorithms against x in [5, 50].  The original policies are
confidential; seeded stand-ins with matching sizes and rule shapes come
from :mod:`repro.synth.workloads` (see DESIGN.md's substitution table).

Two engines are reported: the literal three-algorithm pipeline on the
42-rule firewall (feasible everywhere) and the scalable engine on both.
Expected shape (paper): totals far below a second per comparison, growing
mildly with x; construction dominates.
"""

from __future__ import annotations

from conftest import bench_rounds

from repro.bench import (
    banner,
    bench_scale,
    fig12_experiment,
    render_table,
    timed_fast_comparison,
)
from repro.synth import average_42, perturb, university_661

_XS = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)


def _rows_to_table(rows) -> str:
    return render_table(
        ["x (%)", "trials", "construction (ms)", "shaping (ms)", "comparison (ms)", "total (ms)"],
        [
            (
                row.x_percent,
                row.trials,
                row.construction_ms,
                row.shaping_ms,
                row.comparison_ms,
                row.total_ms,
            )
            for row in rows
        ],
    )


def test_bench_fig12_average_42_reference(benchmark, report_saver):
    """42-rule firewall, literal construction/shaping/comparison pipeline."""
    firewall = average_42()
    xs = _XS if bench_scale() == "paper" else (10, 30, 50)
    rows = fig12_experiment(firewall, xs=xs, seed=12, engine="reference")
    report = "\n".join(
        [
            banner(
                "Fig. 12 (42-rule firewall, reference pipeline)",
                "workload: seeded stand-in for the paper's average-size real-life firewall",
                "perturbation: Section 8.2.1 model, random y per trial, seed=12",
            ),
            _rows_to_table(rows),
        ]
    )
    report_saver("fig12_average42_reference", report)
    perturbed, _ = perturb(firewall, 0.25, seed=1212)
    from repro.bench import timed_comparison

    benchmark.pedantic(
        lambda: timed_comparison(firewall, perturbed),
        rounds=bench_rounds(3),
        iterations=1,
    )
    assert all(row.total_ms > 0 for row in rows)


def test_bench_fig12_university_661_fast(benchmark, report_saver):
    """661-rule firewall, scalable engine (product phase = shaping column)."""
    firewall = university_661()
    xs = _XS if bench_scale() == "paper" else (10, 30, 50)
    rows = fig12_experiment(firewall, xs=xs, seed=12, engine="fast")
    report = "\n".join(
        [
            banner(
                "Fig. 12 (661-rule firewall, scalable engine)",
                "workload: seeded stand-in for the paper's large real-life firewall",
                "columns: construction / product (aligned partition) / extraction",
            ),
            _rows_to_table(rows),
        ]
    )
    report_saver("fig12_university661_fast", report)
    perturbed, _ = perturb(firewall, 0.25, seed=1212)
    benchmark.pedantic(
        lambda: timed_fast_comparison(firewall, perturbed),
        rounds=bench_rounds(3),
        iterations=1,
    )
    assert all(row.total_ms > 0 for row in rows)
