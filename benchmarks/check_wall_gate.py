#!/usr/bin/env python
"""Assert the parallel wall-clock speedup target, or skip out loud.

Usage::

    python benchmarks/check_wall_gate.py CURRENT.json \
        [--row parallel-n500-j4] [--min-speedup 2.0]

The Fig-13 acceptance bar is an *absolute* one — the sharded engine must
beat the serial engine by ``--min-speedup`` wall-clock at ``jobs``
workers — which the relative trajectory gate (``check_regress.py``)
cannot express.  This check reads the named row of a trajectory JSON
written by the benchmark harness and:

* **fails** (exit 1) when the runner has at least ``jobs`` usable cores
  and the row's ``speedup`` is below the target, or when the row is
  missing or unreadable;
* **passes** with an explicit printed skip reason — never silently —
  when the runner reports fewer usable cores than the row's ``jobs``:
  the target is structurally unwinnable there, and a silent green would
  hide that the gate never ran.

Parity is asserted unconditionally: core starvation slows the math down
but never excuses getting it wrong.  Exit status: 0 pass/skip, 1 gate
failed or row missing, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.trajectory import load_trajectory


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="trajectory JSON of the run under test")
    parser.add_argument(
        "--row",
        default="parallel-n500-j4",
        help="key of the row carrying the wall-clock gate",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required serial/parallel wall-clock ratio (default 2.0)",
    )
    args = parser.parse_args(argv)

    try:
        current = load_trajectory(args.current)
    except (OSError, ValueError) as error:
        print(f"check_wall_gate: {error}", file=sys.stderr)
        return 2

    row = next(
        (r for r in current.get("rows", []) if r.get("key") == args.row), None
    )
    if row is None:
        print(
            f"check_wall_gate: FAIL — row {args.row!r} not found in"
            f" {Path(args.current).name} (the gated size was not measured)"
        )
        return 1

    if not row.get("parity", False):
        print(
            f"check_wall_gate: FAIL — {args.row}: parallel/serial disputed"
            " counts differ (parity must hold regardless of cores)"
        )
        return 1

    jobs = row.get("jobs")
    cores = row.get("effective_cores") or (current.get("machine") or {}).get(
        "cpu_count"
    )
    speedup = row.get("speedup", 0.0)
    if isinstance(jobs, int) and isinstance(cores, int) and cores < jobs:
        print(
            f"check_wall_gate: SKIPPED — {args.row}: runner has {cores}"
            f" usable core(s) < {jobs} jobs, so the >= "
            f"{args.min_speedup:.1f}x wall-clock target is structurally"
            f" unwinnable here (measured {speedup:.2f}x, parity OK)."
            " Run on a machine with >= "
            f"{jobs} cores to exercise the gate."
        )
        return 0
    if speedup >= args.min_speedup:
        print(
            f"check_wall_gate: OK — {args.row}: {speedup:.2f}x >= "
            f"{args.min_speedup:.1f}x wall-clock on {cores} usable core(s)"
        )
        return 0
    print(
        f"check_wall_gate: FAIL — {args.row}: {speedup:.2f}x < "
        f"{args.min_speedup:.1f}x wall-clock with {cores} usable core(s)"
        f" for {jobs} jobs"
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
