"""Section 8.1 — the effectiveness experiment, re-enacted with ground truth.

The paper compared a mis-maintained 87-rule university firewall against a
student's redesign: 84 discrepancies, 82 the original's fault (72 caused
by incorrect rule ordering — mostly rules carelessly added at the top —
and 10 by missing rules) and 2 the redesign's.  The policy is
confidential, so the harness re-enacts the setup as a controlled
experiment (see :func:`repro.bench.harness.effectiveness_experiment`):
inject known ordering/missing/misreading errors into a documented 87-rule
campus policy and check the comparator surfaces and correctly attributes
every one.

Expected shape: discrepancy regions overwhelmingly blamed on the original
(the paper's 82:2 ratio), with a small redesign-fault remainder.
"""

from __future__ import annotations

from conftest import bench_rounds

from repro.bench import banner, bench_scale, effectiveness_experiment, render_table
from repro.fdd import compare_firewalls
from repro.synth import campus_87, perturb


def test_bench_effectiveness(benchmark, report_saver):
    if bench_scale() == "paper":
        result = effectiveness_experiment(
            seed=81, ordering_errors=7, missing_rules=3, redesign_errors=2
        )
    else:
        result = effectiveness_experiment(
            seed=81, ordering_errors=3, missing_rules=1, redesign_errors=1
        )
    table = render_table(
        ["metric", "value"],
        [
            ("original firewall rules", result.original_rules),
            ("redesign rules", result.redesign_rules),
            ("ordering errors injected", result.ordering_errors_injected),
            ("missing-rule errors injected", result.missing_rules_injected),
            ("redesign errors injected", result.redesign_errors_injected),
            ("discrepancy regions found", result.discrepancies_found),
            ("regions where original wrong", result.original_wrong),
            ("regions where redesign wrong", result.redesign_wrong),
            ("regions where both wrong", result.both_wrong),
            ("all injected errors surfaced", result.all_errors_surfaced),
        ],
    )
    report = "\n".join(
        [
            banner(
                "Section 8.1 effectiveness experiment (re-enacted, seed=81)",
                "paper: 84 discrepancies; 82 original-wrong (72 ordering, 10 missing), 2 redesign-wrong",
                "shape check: original-wrong must dominate redesign-wrong",
            ),
            table,
        ]
    )
    report_saver("effectiveness_sec81", report)
    assert result.all_errors_surfaced
    assert result.original_wrong > result.redesign_wrong

    firewall = campus_87()
    perturbed, _ = perturb(firewall, 0.1, seed=8181)
    benchmark.pedantic(
        lambda: compare_firewalls(firewall, perturbed),
        rounds=bench_rounds(3),
        iterations=1,
    )
