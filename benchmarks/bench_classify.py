"""Lookup-throughput benchmarks for the compiled classifier.

The serving-side anchor: compiles a synthetic policy into a
:class:`~repro.classify.CompiledMatcher` and measures every rung of the
lookup ladder — the vectorized batch kernel (staged values, pure index
computation), the end-to-end batch call (including packet ingestion and
decision materialization), the scalar bisect walk, and the two
interpreted baselines (``FDD.evaluate`` and first-match
``Firewall.evaluate``) — plus compile cost and the pickle round-trip.

Writes the committed trajectory anchor ``BENCH_classify.json``.  Row
keys are scale-independent (the policy size is recorded as a ``rules``
field), so a quick-scale smoke run is checked against the committed
anchor for parity (``parity``/``identical``) and for drops in the
headline ``speedup_vs_fdd``.  The issue's acceptance bar is asserted
in-test: at paper scale the kernel must beat ``FDD.evaluate`` by >= 20x
per lookup on a 1,000-rule policy, with exact decision parity.
"""

from __future__ import annotations

import pickle
import time

from repro.bench import bench_scale
from repro.classify import compile_fdd
from repro.fdd.fast import construct_fdd_fast
from repro.fields import PacketSampler
from repro.synth import SyntheticFirewallGenerator


def _best_ms(work, *, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        work()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best


def test_bench_classify(benchmark, json_saver):
    """Compile + lookup ladder + pickle round-trip, one policy."""
    paper = bench_scale() == "paper"
    size = 1000 if paper else 200
    num_packets = 20000 if paper else 5000
    firewall = SyntheticFirewallGenerator(seed=1000).generate(size)

    construct_ms = _best_ms(lambda: construct_fdd_fast(firewall), rounds=3)
    fdd = construct_fdd_fast(firewall)
    compile_ms = _best_ms(lambda: compile_fdd(fdd))
    matcher = compile_fdd(fdd)

    packets = PacketSampler(firewall.schema, seed=1000).uniform_many(num_packets)
    # The interpreted baselines cost microseconds per lookup; measure
    # them on subsets sized to keep the benchmark time-bounded.  The
    # subsets are prefixes, so parity checks below line up by index.
    fdd_sample = packets[: min(num_packets, 10000)]
    fw_sample = packets[: min(num_packets, 2000)]

    # Rung 1 — the vectorized kernel on pre-staged values: the pure
    # per-lookup cost of classification, the headline number.
    kernel = matcher.batch_kernel()
    if kernel is not None:
        staged = kernel.stage(packets)
        kernel_ms = _best_ms(lambda: kernel.classify_indices(staged))
    # Rung 2 — the public batch call end to end: ingestion (packets ->
    # staged array), kernel, and Decision materialization.
    batch_ms = _best_ms(lambda: matcher.classify_batch(packets))
    # Rung 3 — the scalar bisect walk (the no-numpy fallback).
    scalar_ms = _best_ms(lambda: matcher._classify_batch_scalar(packets), rounds=3)
    # Baselines — the reduced diagram and the first-match rule scan.
    fdd_ms = _best_ms(lambda: [fdd.evaluate(p) for p in fdd_sample], rounds=3)
    firewall_ms = _best_ms(lambda: [firewall.evaluate(p) for p in fw_sample], rounds=3)

    fdd_us = fdd_ms * 1000.0 / len(fdd_sample)
    firewall_us = firewall_ms * 1000.0 / len(fw_sample)
    batch_us = batch_ms * 1000.0 / num_packets
    scalar_us = scalar_ms * 1000.0 / num_packets
    kernel_us = kernel_ms * 1000.0 / num_packets if kernel is not None else scalar_us

    # Exact decision parity across every rung, on the same packets.
    compiled_decisions = matcher.classify_batch(packets)
    parity = (
        compiled_decisions == [fdd.evaluate(p) for p in fdd_sample]
        + [matcher.classify(p) for p in packets[len(fdd_sample):]]
        and compiled_decisions[: len(fw_sample)]
        == [firewall.evaluate(p) for p in fw_sample]
    )

    # The artifact is what caches and workers ship: round-trip it and
    # require structural equality plus identical decisions.
    blob = pickle.dumps(matcher)
    round_trip_ms = _best_ms(lambda: pickle.loads(pickle.dumps(matcher)))
    clone = pickle.loads(blob)
    identical = (
        clone == matcher
        and clone.classify_batch(fw_sample) == compiled_decisions[: len(fw_sample)]
    )

    json_saver(
        "classify",
        [
            {
                "key": "classify-compile",
                "construct_ms": construct_ms,
                "compile_ms": compile_ms,
                "rules": size,
                "nodes": matcher.node_count,
                "segments": matcher.segment_count,
                "size_bytes": matcher.size_bytes(),
            },
            {
                "key": "classify-lookup-compiled",
                "per_lookup_us": kernel_us,
                "rules": size,
                "packets": num_packets,
                "kernel": int(kernel is not None),
            },
            {
                "key": "classify-lookup-batch",
                "per_lookup_us": batch_us,
                "rules": size,
                "packets": num_packets,
            },
            {
                "key": "classify-lookup-scalar",
                "per_lookup_us": scalar_us,
                "rules": size,
                "packets": num_packets,
            },
            {
                "key": "classify-lookup-fdd",
                "per_lookup_us": fdd_us,
                "rules": size,
                "packets": len(fdd_sample),
            },
            {
                "key": "classify-lookup-firewall",
                "per_lookup_us": firewall_us,
                "rules": size,
                "packets": len(fw_sample),
            },
            {
                "key": "classify-parity",
                "parity": int(parity),
                "speedup_vs_fdd": fdd_us / kernel_us if kernel_us else 0.0,
                "speedup_batch_vs_fdd": fdd_us / batch_us if batch_us else 0.0,
                "speedup_scalar_vs_fdd": fdd_us / scalar_us if scalar_us else 0.0,
                "speedup_vs_firewall": firewall_us / kernel_us if kernel_us else 0.0,
            },
            {
                "key": "classify-pickle",
                "round_trip_ms": round_trip_ms,
                "size_bytes": len(blob),
                "identical": int(identical),
            },
        ],
        meta={"rules": size, "packets": num_packets, "seed": 1000},
        anchor="classify",
    )

    assert parity, "compiled decisions diverge from the interpreted engines"
    assert identical, "pickle round-trip changed the artifact or its behavior"
    if kernel is not None:
        # The issue's acceptance bar (>= 20x at n=1000); the quick-scale
        # bar is looser only because the baseline diagram is smaller and
        # therefore faster per lookup.
        floor = 20.0 if paper else 8.0
        assert fdd_us >= floor * kernel_us, (
            f"kernel speedup vs FDD.evaluate fell below {floor}x:"
            f" {fdd_us / kernel_us:.1f}x ({kernel_us:.3f}us vs {fdd_us:.3f}us)"
        )
    benchmark(lambda: matcher.classify_batch(packets))
