"""Auxiliary-analysis benchmarks: redundancy removal, N-team comparison.

Not paper figures, but the costs behind Section 6 (Method 2 runs
redundancy removal) and Section 7.3 (N > 2 teams: cross comparison's
N(N-1)/2 pipelines vs direct comparison's one N-way shaping).
"""

from __future__ import annotations

import time

from conftest import bench_rounds

from repro.analysis import (
    compare_many,
    cross_compare,
    find_upward_redundant,
    remove_redundant_rules,
)
from repro.bench import banner, bench_scale, render_table
from repro.synth import SyntheticFirewallGenerator, campus_87, perturb


def test_bench_redundancy_removal(benchmark, report_saver):
    sizes = (20, 40, 80) if bench_scale() == "paper" else (20,)
    rows = []
    for size in sizes:
        firewall = SyntheticFirewallGenerator(seed=size).generate(size)
        start = time.perf_counter()
        upward = find_upward_redundant(firewall)
        upward_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        slim = remove_redundant_rules(firewall)
        complete_ms = (time.perf_counter() - start) * 1000
        rows.append(
            (size, len(upward), size - len(slim), upward_ms, complete_ms)
        )
    report = "\n".join(
        [
            banner(
                "Redundancy analysis cost ([19]; used by resolution Method 2)",
                "upward = symbolic unreachability; complete = equivalence-checked removal",
            ),
            render_table(
                [
                    "rules",
                    "upward redundant",
                    "removed (complete)",
                    "upward (ms)",
                    "complete (ms)",
                ],
                rows,
            ),
        ]
    )
    report_saver("aux_redundancy", report)
    firewall = SyntheticFirewallGenerator(seed=20).generate(20)
    benchmark.pedantic(
        lambda: find_upward_redundant(firewall),
        rounds=bench_rounds(5),
        iterations=1,
    )


def test_bench_multiteam_comparison(benchmark, report_saver):
    """Cross vs direct comparison for N teams (Section 7.3)."""
    team_counts = (2, 3, 4) if bench_scale() == "paper" else (2, 3)
    base = campus_87()
    rows = []
    for n_teams in team_counts:
        versions = [base]
        for i in range(n_teams - 1):
            perturbed, _ = perturb(base, 0.1, seed=100 + i)
            versions.append(perturbed)
        start = time.perf_counter()
        pairwise = cross_compare(versions)
        cross_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        regions = compare_many(versions)
        direct_ms = (time.perf_counter() - start) * 1000
        rows.append(
            (
                n_teams,
                sum(len(d) for d in pairwise.values()),
                len(regions),
                cross_ms,
                direct_ms,
            )
        )
    report = "\n".join(
        [
            banner(
                "Section 7.3: cross vs direct comparison of N versions",
                "base: campus-87; versions: 10% perturbations of the base",
            ),
            render_table(
                [
                    "teams",
                    "pairwise cells",
                    "direct regions",
                    "cross (ms)",
                    "direct (ms)",
                ],
                rows,
            ),
        ]
    )
    report_saver("aux_multiteam", report)
    versions = [base, perturb(base, 0.1, seed=100)[0]]
    benchmark.pedantic(
        lambda: compare_many(versions),
        rounds=bench_rounds(3),
        iterations=1,
    )
