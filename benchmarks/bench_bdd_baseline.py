"""Section 7.5 — why not BDDs: the FDD pipeline vs a BDD baseline.

The paper implemented a BDD comparator with CUDD and found that
"comparing two small firewalls results in millions of rules" of
unreadable bit-level output, whereas the FDD pipeline yields a handful of
rule-like regions.  This benchmark reruns both pipelines on the running
example and on growing synthetic pairs and reports, per size: FDD
discrepancy regions (aggregated), BDD cubes, disputed packets (both must
agree exactly — the engines cross-validate), and runtimes.

Expected shape: identical disputed-packet counts; cube counts orders of
magnitude above region counts and growing with size; cube output
constrains scattered bits (not prefixes).
"""

from __future__ import annotations

import time

from conftest import bench_rounds

from repro import aggregate_discrepancies, compare_firewalls
from repro.bdd import compare_with_bdd, cube_to_text
from repro.bench import banner, bench_scale, render_table
from repro.fdd.fast import compare_fast
from repro.synth import generate_firewall_pair, team_a_firewall, team_b_firewall


def test_bench_bdd_vs_fdd(benchmark, report_saver):
    sizes = (10, 20, 40) if bench_scale() == "paper" else (10,)
    rows = []

    # Running example first: exact, human-meaningful numbers.
    team_a, team_b = team_a_firewall(), team_b_firewall()
    fdd_start = time.perf_counter()
    fdd_regions = aggregate_discrepancies(compare_firewalls(team_a, team_b))
    fdd_ms = (time.perf_counter() - fdd_start) * 1000
    bdd_start = time.perf_counter()
    bdd = compare_with_bdd(team_a, team_b)
    bdd_ms = (time.perf_counter() - bdd_start) * 1000
    fdd_disputed = compare_fast(team_a, team_b).disputed_packet_count()
    assert fdd_disputed == bdd.disputed_packets
    rows.append(
        ("paper example", len(fdd_regions), bdd.cube_count, fdd_ms, bdd_ms)
    )

    for size in sizes:
        fw_a, fw_b = generate_firewall_pair(size, seed=75)
        fdd_start = time.perf_counter()
        regions = aggregate_discrepancies(compare_firewalls(fw_a, fw_b))
        fdd_ms = (time.perf_counter() - fdd_start) * 1000
        bdd_start = time.perf_counter()
        baseline = compare_with_bdd(fw_a, fw_b, cube_limit=500_000)
        bdd_ms = (time.perf_counter() - bdd_start) * 1000
        disputed = compare_fast(fw_a, fw_b).disputed_packet_count()
        assert disputed == baseline.disputed_packets, (
            "BDD and FDD engines disagree on the disputed packet count"
        )
        cubes = baseline.cube_count
        label = f"{cubes}+" if baseline.cube_count_truncated else str(cubes)
        rows.append((f"synthetic n={size}", len(regions), label, fdd_ms, bdd_ms))

    sample_cube = next(iter(bdd.manager.cubes(bdd.difference, limit=1)), None)
    sample = cube_to_text(sample_cube, bdd.encoder) if sample_cube else "(none)"
    report = "\n".join(
        [
            banner(
                "Section 7.5: FDD pipeline vs BDD baseline",
                "both engines must agree on disputed packets (asserted)",
                "FDD regions are rule-like; BDD cubes constrain raw bits",
            ),
            render_table(
                ["workload", "FDD regions", "BDD cubes", "FDD ms", "BDD ms"],
                rows,
            ),
            "",
            "sample BDD cube (bit-mask form, not human readable):",
            f"  {sample}",
            "sample FDD region (rule-like):",
            f"  {fdd_regions[0].describe()}",
        ]
    )
    report_saver("bdd_baseline_sec75", report)

    benchmark.pedantic(
        lambda: compare_with_bdd(team_a, team_b),
        rounds=bench_rounds(3),
        iterations=1,
    )
