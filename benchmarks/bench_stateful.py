"""Throughput of the stateful firewall model ([11], extension).

Not a paper figure: measures packets/second of
:class:`repro.stateful.StatefulFirewall` on a synthetic flow trace with
an interleaved port scan, plus the state-table cost in isolation.  The
stateless section is evaluated per packet via first-match over the
rule list; a production engine would evaluate the FDD instead — both
paths are reported so the gap is visible.
"""

from __future__ import annotations

import time

from conftest import bench_rounds

from repro.bench import banner, render_table
from repro.fdd.fast import construct_fdd_fast
from repro.policy import ACCEPT, DISCARD, Firewall, Predicate, Rule
from repro.stateful import (
    STATE_ESTABLISHED,
    ConnectionTable,
    FlowKey,
    StatefulFirewall,
    stateful_schema,
)
from repro.synth import FlowTraceGenerator


def _gateway() -> StatefulFirewall:
    schema = stateful_schema()
    policy = Firewall(
        schema,
        [
            Rule.build(schema, ACCEPT, state=STATE_ESTABLISHED),
            Rule.build(schema, ACCEPT, src_ip="10.0.0.0/8"),
            Rule.build(schema, DISCARD),
        ],
    )
    return StatefulFirewall(
        policy, tracking=[Predicate.from_fields(schema, src_ip="10.0.0.0/8")]
    )


def test_bench_stateful_throughput(benchmark, report_saver):
    fw = _gateway()
    trace = list(FlowTraceGenerator(seed=7).with_scanner(300))

    start = time.perf_counter()
    for timed in trace:
        fw.process(timed.packet, timed.time)
    stateful_s = time.perf_counter() - start

    # Stateless section alone, rule-list evaluation vs FDD evaluation.
    stateless = fw.stateless
    annotated = [(0,) + tuple(t.packet) for t in trace]
    start = time.perf_counter()
    for packet in annotated:
        stateless.evaluate(packet)
    rules_s = time.perf_counter() - start
    fdd = construct_fdd_fast(stateless)
    start = time.perf_counter()
    for packet in annotated:
        fdd.evaluate(packet)
    fdd_s = time.perf_counter() - start

    # State table in isolation.
    table = ConnectionTable()
    keys = [FlowKey.of_packet(t.packet) for t in trace]
    start = time.perf_counter()
    for i, key in enumerate(keys):
        table.insert(key, float(i))
        table.lookup(key.reversed(), float(i))
    table_s = time.perf_counter() - start

    n = len(trace)
    report = "\n".join(
        [
            banner(
                "Stateful firewall throughput (extension; model of [11])",
                f"trace: {n} packets (flows + interleaved scan), seed=7",
            ),
            render_table(
                ["path", "packets/s"],
                [
                    ("stateful process()", n / stateful_s),
                    ("stateless rules only", n / rules_s),
                    ("stateless FDD only", n / fdd_s),
                    ("state table only", n / table_s),
                ],
            ),
        ]
    )
    report_saver("aux_stateful_throughput", report)

    benchmark.pedantic(
        lambda: [fw.process(t.packet, t.time) for t in trace[:100]],
        rounds=bench_rounds(3),
        iterations=1,
    )
