"""Micro-benchmarks of the substrates the pipeline's constants live in.

Not a paper figure: these keep the building blocks honest so regressions
in interval algebra, construction, evaluation, or generation show up
before they distort the figure-level benchmarks.
"""

from __future__ import annotations

import random

from repro.fdd import construct_fdd, generate_firewall, reduce_fdd
from repro.fdd.fast import construct_fdd_fast
from repro.fields import PacketSampler
from repro.intervals import IntervalSet
from repro.synth import SyntheticFirewallGenerator, average_42


def _random_sets(count: int, seed: int) -> list[IntervalSet]:
    rng = random.Random(seed)
    sets = []
    for _ in range(count):
        spans = []
        for _ in range(rng.randint(1, 5)):
            lo = rng.randrange(0, 1 << 16)
            spans.append((lo, lo + rng.randrange(0, 1 << 12)))
        sets.append(IntervalSet.of(*spans))
    return sets


def test_bench_intervalset_algebra(benchmark):
    sets = _random_sets(200, seed=3)

    def work():
        acc = sets[0]
        for values in sets[1:]:
            acc = (acc | values) - sets[len(acc.intervals) % len(sets)]
        return acc

    benchmark(work)


def test_bench_construct_reference_42(benchmark):
    firewall = average_42()
    benchmark(lambda: construct_fdd(firewall))


def test_bench_construct_fast_300(benchmark):
    firewall = SyntheticFirewallGenerator(seed=23).generate(300)
    benchmark(lambda: construct_fdd_fast(firewall))


def test_bench_fdd_evaluation(benchmark):
    firewall = SyntheticFirewallGenerator(seed=29).generate(200)
    fdd = construct_fdd_fast(firewall)
    packets = PacketSampler(firewall.schema, seed=29).uniform_many(1000)
    benchmark(lambda: [fdd.evaluate(p) for p in packets])


def test_bench_firewall_evaluation(benchmark):
    firewall = SyntheticFirewallGenerator(seed=29).generate(200)
    packets = PacketSampler(firewall.schema, seed=29).uniform_many(100)
    benchmark(lambda: [firewall(p) for p in packets])


def test_bench_generate_compact_firewall(benchmark):
    firewall = average_42()
    fdd = reduce_fdd(construct_fdd(firewall))
    benchmark(lambda: generate_firewall(fdd, reduce=False, compact=False))
