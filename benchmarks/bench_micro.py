"""Micro-benchmarks of the substrates the pipeline's constants live in.

Not a paper figure: these keep the building blocks honest so regressions
in interval algebra, construction, evaluation, or generation show up
before they distort the figure-level benchmarks.
"""

from __future__ import annotations

import random
import time

from repro.analysis.impact import analyze_change
from repro.bench import bench_scale
from repro.fdd import construct_fdd, generate_firewall, reduce_fdd
from repro.fdd.canonical import semantic_fingerprint
from repro.fdd.fast import HashConsStore, compare_fast, construct_fdd_fast
from repro.fields import PacketSampler
from repro.intervals import IntervalSet
from repro.synth import SyntheticFirewallGenerator, average_42, generate_firewall_pair


def _random_sets(count: int, seed: int) -> list[IntervalSet]:
    rng = random.Random(seed)
    sets = []
    for _ in range(count):
        spans = []
        for _ in range(rng.randint(1, 5)):
            lo = rng.randrange(0, 1 << 16)
            spans.append((lo, lo + rng.randrange(0, 1 << 12)))
        sets.append(IntervalSet.of(*spans))
    return sets


def test_bench_intervalset_algebra(benchmark):
    sets = _random_sets(200, seed=3)

    def work():
        acc = sets[0]
        for values in sets[1:]:
            acc = (acc | values) - sets[len(acc.intervals) % len(sets)]
        return acc

    benchmark(work)


def test_bench_construct_reference_42(benchmark):
    firewall = average_42()
    benchmark(lambda: construct_fdd(firewall))


def test_bench_construct_fast_300(benchmark):
    firewall = SyntheticFirewallGenerator(seed=23).generate(300)
    benchmark(lambda: construct_fdd_fast(firewall))


def test_bench_fdd_evaluation(benchmark):
    firewall = SyntheticFirewallGenerator(seed=29).generate(200)
    fdd = construct_fdd_fast(firewall)
    packets = PacketSampler(firewall.schema, seed=29).uniform_many(1000)
    benchmark(lambda: [fdd.evaluate(p) for p in packets])


def test_bench_firewall_evaluation(benchmark):
    firewall = SyntheticFirewallGenerator(seed=29).generate(200)
    packets = PacketSampler(firewall.schema, seed=29).uniform_many(100)
    benchmark(lambda: [firewall(p) for p in packets])


def test_bench_generate_compact_firewall(benchmark):
    firewall = average_42()
    fdd = reduce_fdd(construct_fdd(firewall))
    benchmark(lambda: generate_firewall(fdd, reduce=False, compact=False))


def _best_ms(work, *, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        work()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best


def test_bench_interval_kernel(benchmark, json_saver):
    """The interned kernel vs direct interval algebra, plus the merge
    sweeps — writes the committed trajectory anchor ``BENCH_micro.json``.

    The kernel workload replays the label-algebra mix the FDD engine
    issues (intersect/union/subtract over a recurring label population —
    exactly the regime the id-keyed memo exists for); the direct variant
    runs the same calls through the raw :class:`IntervalSet` methods.
    """
    sets = _random_sets(120, seed=7)
    pairs = [
        (sets[i], sets[(i * 7 + 3) % len(sets)]) for i in range(len(sets))
    ] * 40

    def direct():
        for a, b in pairs:
            a.intersect(b)
            a.union(b)
            a.subtract(b)

    def interned():
        store = HashConsStore()
        for a, b in pairs:
            store.intersect(a, b)
            store.union(a, b)
            store.subtract(a, b)

    direct_ms = _best_ms(direct)
    interned_ms = _best_ms(interned)

    # union's linear merge sweep and from_values' run-length merge.
    union_ops = [(sets[i], sets[-1 - i]) for i in range(len(sets) // 2)] * 20
    union_ms = _best_ms(lambda: [a.union(b) for a, b in union_ops])
    rng = random.Random(11)
    values = [rng.randrange(0, 1 << 18) for _ in range(1 << 16)]
    from_values_ms = _best_ms(lambda: IntervalSet.from_values(values))

    # Engine-level effect: one full fast comparison (shared interned store).
    size = 500
    fw_a, fw_b = generate_firewall_pair(size, seed=13)
    disputed = compare_fast(fw_a, fw_b).disputed_packet_count()
    compare_ms = _best_ms(lambda: compare_fast(fw_a, fw_b), rounds=2)

    json_saver(
        "micro_kernel",
        [
            {"key": "kernel-algebra-direct", "total_ms": direct_ms},
            {
                "key": "kernel-algebra-interned",
                "total_ms": interned_ms,
                "speedup_vs_direct": direct_ms / interned_ms if interned_ms else 0.0,
            },
            {"key": "intervalset-union-merge", "total_ms": union_ms},
            {"key": "intervalset-from-values-64k", "total_ms": from_values_ms},
            {
                "key": f"compare-fast-n{size}",
                "total_ms": compare_ms,
                "disputed_packets": disputed,
            },
        ],
        meta={"pairs": len(pairs), "seed": 7},
        anchor="micro",
    )
    assert interned_ms < direct_ms * 1.5  # the memo must not cost more than it saves
    benchmark(interned)


def test_bench_store_engines(benchmark, json_saver):
    """Store-backed reduce/fingerprint/impact vs the paper-literal tree
    pipeline — writes the committed trajectory anchor ``BENCH_store.json``.

    The issue's acceptance bar lives here: at paper scale the
    store-backed ``semantic_fingerprint`` and ``analyze_change`` must
    beat the seed tree pipeline by >= 2x on a 1,000-rule synthetic
    policy, and the answers must agree exactly.  The tree-impact side is
    measured at a smaller size whose time lower-bounds the full-size
    time (see the inline comment), so the recorded ``speedup_vs_tree``
    is itself a lower bound.  Row keys are scale-independent (the size
    is recorded as a ``rules`` field), so a quick-scale smoke run can
    still be checked against the committed anchor for parity
    (``engines_agree``) and gross regressions.
    """
    size = 1000 if bench_scale() == "paper" else 120
    fw_a, fw_b = generate_firewall_pair(size, seed=13)

    def _timed_once(work):
        start = time.perf_counter()
        result = work()
        return result, (time.perf_counter() - start) * 1000.0

    # The tree-pipeline sides take minutes at paper scale: run each
    # exactly once and reuse the result for the parity checks.
    store_fp_ms = _best_ms(lambda: semantic_fingerprint(fw_a))
    tree_fp, tree_fp_ms = _timed_once(
        lambda: semantic_fingerprint(fw_a, engine="reference")
    )
    fp_agree = semantic_fingerprint(fw_a) == tree_fp

    # Impact: the store side runs at full size; the tree side runs at a
    # tree-feasible size (the reference 3-phase pipeline on independent
    # policy pairs grows super-linearly — n=120 already takes ~80 s —
    # so its time there is a strict lower bound for the full-size time,
    # keeping the >=2x assertion below conservative).
    tree_cmp_size = 120 if bench_scale() == "paper" else 60
    if tree_cmp_size == size:
        cmp_a, cmp_b = fw_a, fw_b
    else:
        cmp_a, cmp_b = generate_firewall_pair(tree_cmp_size, seed=13)
    _, store_impact_ms = _timed_once(lambda: analyze_change(fw_a, fw_b))
    tree_impact, tree_impact_ms = _timed_once(
        lambda: analyze_change(cmp_a, cmp_b, engine="reference")
    )
    impact_agree = (
        analyze_change(cmp_a, cmp_b).affected_packets()
        == tree_impact.affected_packets()
    )

    # Reduction = interning a mutable reference tree into a fresh store.
    # Measured at a smaller size: the *unshared* input tree (not the
    # reduction) grows super-linearly in rule count.
    reduce_size = 300 if bench_scale() == "paper" else 120
    reduce_fw, _ = generate_firewall_pair(reduce_size, seed=13)
    tree = construct_fdd(reduce_fw)
    reduce_ms = _best_ms(lambda: reduce_fdd(tree))

    json_saver(
        "store_engines",
        [
            {
                "key": "fingerprint-store",
                "total_ms": store_fp_ms,
                "rules": size,
                "engines_agree": int(fp_agree),
                "speedup_vs_tree": tree_fp_ms / store_fp_ms if store_fp_ms else 0.0,
            },
            {"key": "fingerprint-tree", "total_ms": tree_fp_ms, "rules": size},
            {
                "key": "impact-store",
                "total_ms": store_impact_ms,
                "rules": size,
                "engines_agree": int(impact_agree),
                "speedup_vs_tree": (
                    tree_impact_ms / store_impact_ms if store_impact_ms else 0.0
                ),
            },
            {"key": "impact-tree", "total_ms": tree_impact_ms, "rules": tree_cmp_size},
            {"key": "reduce-store", "total_ms": reduce_ms, "rules": reduce_size},
        ],
        meta={"rules": size, "seed": 13, "scale": bench_scale()},
        anchor="store",
    )
    assert fp_agree and impact_agree
    assert store_fp_ms * 2 <= tree_fp_ms
    assert store_impact_ms * 2 <= tree_impact_ms
    benchmark(lambda: semantic_fingerprint(fw_a))
