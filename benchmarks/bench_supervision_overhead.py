"""Supervision overhead — supervised pool vs bare pool, fault-free.

The supervised worker pool (``repro.parallel.supervisor``) adds
per-shard deadlines, heartbeat threads, retry bookkeeping, and
checksummed result envelopes around every process fan-out.  All of that
lives off the comparison hot path — on the parent's event loop and the
workers' heartbeat threads — so the design target is <2% overhead when
no fault fires (see the supervision section of ``docs/performance.md``).

This benchmark measures the supervised engine against the bare pool
(``supervised=False``) on the Fig. 13 workload at ``jobs=4``, and
against itself at ``jobs=1`` (which runs inline on both paths — the
supervisor must never engage), asserting byte-identical summaries and
zero degradations.  Timings are best-of-N over calibrated samples; the
archived report carries the measured numbers.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.bench import (
    banner,
    bench_scale,
    render_table,
    supervision_overhead_experiment,
)
from repro.parallel import compare_parallel
from repro.synth import generate_firewall_pair


def test_bench_supervision_overhead(benchmark, report_saver, json_saver):
    rows = supervision_overhead_experiment()

    for row in rows:
        assert row.identical_output, f"supervised output diverged on {row.workload}"
        assert row.degradations == 0, f"{row.workload} degraded — not a fault-free run"
        assert row.overhead_pct < 2.0, (
            f"supervision overhead {row.overhead_pct:.2f}% on {row.workload} "
            "exceeds the 2% fault-free target"
        )

    json_saver(
        "supervision_overhead",
        [{"key": row.workload, **asdict(row)} for row in rows],
        meta={"seed": 13, "engine": "repro.parallel supervised vs bare pool"},
    )
    table = render_table(
        ["workload", "jobs", "bare (ms)", "supervised (ms)", "overhead (%)"],
        [
            (
                row.workload,
                row.jobs,
                f"{row.bare_ms:.2f}",
                f"{row.supervised_ms:.2f}",
                f"{row.overhead_pct:+.2f}",
            )
            for row in rows
        ],
    )
    report = "\n".join(
        [
            banner(
                "Supervision overhead: supervised pool vs bare pool, fault-free",
                "target <2%; summaries asserted identical, zero degradations",
            ),
            table,
        ]
    )
    report_saver("supervision_overhead", report)

    size = 200 if bench_scale() == "paper" else 60
    fw_a, fw_b = generate_firewall_pair(size, seed=13)
    benchmark.pedantic(
        lambda: compare_parallel(fw_a, fw_b, jobs=4, inline=False),
        rounds=3 if bench_scale() == "paper" else 1,
        iterations=1,
    )
