"""Fleet audit throughput — cold vs warm content-addressed cache.

Audits a synthetic fleet (``repro.synth`` policies, one shared golden
baseline) twice against the same on-disk cache and measures the cold
and warm wall-clock.  The warm run must perform **zero** FDD
constructions (every policy resolves through the source-digest memo and
per-stage entries) and be at least 10x faster — the same bar the
acceptance test in ``tests/audit/test_fleet_scale.py`` holds, measured
here at benchmark scale and archived as a trajectory.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.audit import ResultCache, audit_fleet, load_manifest
from repro.bench import banner, bench_scale, render_table
from repro.policy import dumps
from repro.synth import SyntheticFirewallGenerator

SCALES = {"quick": (20, 6), "paper": (120, 10)}


def _build_fleet(root: Path, policies: int, rules: int) -> None:
    for index in range(policies):
        generator = SyntheticFirewallGenerator(seed=4000 + index)
        firewall = generator.generate(rules, name=f"fleet-{index:03d}")
        tenant = root / f"tenant-{index % 8}"
        tenant.mkdir(exist_ok=True)
        (tenant / f"policy-{index:03d}.fw").write_text(dumps(firewall, "standard"))
    golden = SyntheticFirewallGenerator(seed=3999).generate(rules, name="golden")
    (root / "golden.fw").write_text(dumps(golden, "standard"))


def test_bench_audit_cache(report_saver, json_saver):
    policies, rules = SCALES[bench_scale()]
    workdir = Path(tempfile.mkdtemp(prefix="bench-audit-"))
    try:
        fleet_dir = workdir / "fleet"
        fleet_dir.mkdir()
        _build_fleet(fleet_dir, policies, rules)
        manifest = load_manifest(fleet_dir, baseline=str(fleet_dir / "golden.fw"))

        started = time.perf_counter()
        cold = audit_fleet(manifest, cache=ResultCache(workdir / "cache"))
        cold_s = time.perf_counter() - started

        started = time.perf_counter()
        warm = audit_fleet(manifest, cache=ResultCache(workdir / "cache"))
        warm_s = time.perf_counter() - started
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    assert cold.stats.errors == 0
    assert warm.stats.fdd_constructions == 0, "warm run constructed an FDD"
    assert warm.stats.fully_cached == warm.stats.policies
    assert {r.name: r.stages for r in cold.results} == {
        r.name: r.stages for r in warm.results
    }, "cold/warm diagnostic parity violated"
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    assert speedup >= 10.0, f"warm speedup {speedup:.1f}x below the 10x bar"

    rows = [
        {
            "key": f"fleet-{policies}",
            "policies": policies,
            "rules_per_policy": rules,
            "cold_ms": round(cold_s * 1e3, 2),
            "warm_ms": round(warm_s * 1e3, 2),
            "speedup": round(speedup, 1),
            "cold_constructions": cold.stats.fdd_constructions,
            "warm_constructions": warm.stats.fdd_constructions,
            "parity": True,
        }
    ]
    json_saver("audit_cache", rows, meta={"seed": 4000, "scale": bench_scale()})
    table = render_table(
        ["fleet", "cold (ms)", "warm (ms)", "speedup", "warm FDD builds"],
        [
            (
                row["key"],
                f"{row['cold_ms']:.1f}",
                f"{row['warm_ms']:.1f}",
                f"{row['speedup']:.1f}x",
                row["warm_constructions"],
            )
            for row in rows
        ],
    )
    report = "\n".join(
        [
            banner(
                "Fleet audit: cold vs warm content-addressed cache",
                "warm bar: zero FDD constructions, >=10x faster, parity",
            ),
            table,
        ]
    )
    report_saver("audit_cache", report)
