"""Theorem 1 and Section 7.4 — FDD sizes vs the worst-case bound.

Theorem 1 bounds the constructed FDD's decision paths by ``(2n - 1)^d``
for ``n`` simple rules over ``d`` fields; Section 7.4 argues the worst
case "is extremely unlikely to happen in practice".  This benchmark
measures actual path counts of constructed FDDs for real-life-shaped
synthetic firewalls and reports the ratio to the bound.

Expected shape: measured paths many orders of magnitude under the bound,
growing roughly linearly (not exponentially) with rule count.
"""

from __future__ import annotations

from conftest import bench_rounds

from repro.bench import banner, bench_scale, render_table
from repro.fdd.fast import construct_fdd_fast
from repro.synth import SyntheticFirewallGenerator


def test_bench_theorem1_bound(benchmark, report_saver):
    sizes = (10, 30, 100, 300, 1000) if bench_scale() == "paper" else (10, 30)
    rows = []
    for size in sizes:
        generator = SyntheticFirewallGenerator(seed=size)
        firewall = generator.generate(size)
        # Theorem 1 is stated for *simple* rules; count them.
        simple_rules = sum(
            1 for rule in firewall for _ in rule.predicate.split_simple()
        )
        fdd = construct_fdd_fast(firewall)
        paths = fdd.count_paths()
        bound = (2 * simple_rules - 1) ** len(firewall.schema)
        rows.append(
            (
                size,
                simple_rules,
                paths,
                f"{bound:.2e}",
                f"{paths / bound:.2e}",
            )
        )
    report = "\n".join(
        [
            banner(
                "Theorem 1: constructed-FDD paths vs the (2n-1)^d bound",
                "d = 5 fields; n = simple-rule count after splitting interval sets",
            ),
            render_table(
                ["rules", "simple rules (n)", "FDD paths", "(2n-1)^d", "ratio"],
                rows,
            ),
        ]
    )
    report_saver("theorem1_bound", report)
    generator = SyntheticFirewallGenerator(seed=100)
    firewall = generator.generate(100)
    benchmark.pedantic(
        lambda: construct_fdd_fast(firewall),
        rounds=bench_rounds(3),
        iterations=1,
    )
