"""Ablation — the cost of the paper's staged design vs fused traversal.

Three ways to compute the same discrepancy set:

* **reference** — the paper's literal three algorithms (tree FDDs,
  subgraph replication, semi-isomorphic shaping, lockstep compare);
* **fused** — :func:`repro.fdd.comparison.compare_direct`, one
  simultaneous tree traversal, no shaping phase;
* **fast** — :mod:`repro.fdd.fast`, hash-consed DAGs with a memoized
  product walk.

All three are exact; the ablation quantifies what the intermediate
semi-isomorphic materialization costs and what sharing buys.  Expected
shape: fused beats reference by skipping shaping; fast beats both as
sizes grow; all agree on the disputed packet count (asserted).
"""

from __future__ import annotations

import time

from conftest import bench_rounds

from repro.bench import banner, bench_scale, render_table
from repro.fdd import compare_direct, compare_firewalls
from repro.fdd.fast import compare_fast
from repro.synth import generate_firewall_pair


def test_bench_engine_ablation(benchmark, report_saver):
    sizes = (25, 50, 100) if bench_scale() == "paper" else (25,)
    rows = []
    for size in sizes:
        fw_a, fw_b = generate_firewall_pair(size, seed=19)

        start = time.perf_counter()
        reference = compare_firewalls(fw_a, fw_b)
        reference_ms = (time.perf_counter() - start) * 1000
        reference_disputed = sum(d.size() for d in reference)

        start = time.perf_counter()
        fused = compare_direct(fw_a, fw_b)
        fused_ms = (time.perf_counter() - start) * 1000
        fused_disputed = sum(d.size() for d in fused)

        start = time.perf_counter()
        fast = compare_fast(fw_a, fw_b)
        fast_ms = (time.perf_counter() - start) * 1000
        fast_disputed = fast.disputed_packet_count()

        assert reference_disputed == fused_disputed == fast_disputed
        rows.append((size, reference_ms, fused_ms, fast_ms))

    report = "\n".join(
        [
            banner(
                "Ablation: reference pipeline vs fused traversal vs fast engine",
                "identical disputed-packet counts asserted across engines",
            ),
            render_table(
                ["rules/firewall", "reference (ms)", "fused (ms)", "fast (ms)"],
                rows,
            ),
        ]
    )
    report_saver("ablation_engines", report)

    fw_a, fw_b = generate_firewall_pair(25, seed=19)
    benchmark.pedantic(
        lambda: compare_fast(fw_a, fw_b),
        rounds=bench_rounds(5),
        iterations=1,
    )
