"""Tests for the supervised worker pool (:mod:`repro.parallel.supervisor`).

The chaos suite (``tests/chaos``) exercises the supervisor through the
full comparison engine; these tests drive :func:`supervise` directly
with tiny deterministic workers, so each failure class — crash, stall,
worker error, fatal error — is pinned down in isolation.  Workers that
must fail *once* and then succeed coordinate through marker files (the
only cross-process state a SIGKILLed worker can leave behind).
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.exceptions import BudgetExceededError, SupervisionError
from repro.parallel import Degradation, SupervisorConfig, supervise

# ----------------------------------------------------------------------
# Workers (module-level: they cross the pipe by reference under spawn)
# ----------------------------------------------------------------------


def _first_visit(marker: str) -> bool:
    """Atomically claim ``marker``; True for exactly one caller ever."""
    try:
        os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        return True
    except FileExistsError:
        return False


def _double(value):
    return value * 2


def _kill_on_first_attempt(task):
    value, marker = task
    if _first_visit(marker):
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 10


def _stall_on_first_attempt(task):
    value, marker = task
    if _first_visit(marker):
        time.sleep(60.0)
    return value * 10


def _succeed_only_in_process(task):
    value, pid = task
    if os.getpid() != pid:
        raise ValueError(f"wrong process {os.getpid()}")
    return value + 1


def _always_raise(task):
    raise ValueError(f"worker refuses task {task!r}")


def _raise_budget_error(task):
    raise BudgetExceededError(
        "node budget exceeded: 3 > 2",
        resource="fdd-nodes",
        spent=3,
        limit=2,
    )


#: Retry fast, detect fast — keeps every test subsecond-ish.
_QUICK = SupervisorConfig(
    max_retries=2, backoff_base_s=0.01, heartbeat_interval_s=0.05
)


class TestHappyPath:
    def test_results_arrive_in_task_order(self):
        results, degradations, failures = supervise(
            _double, list(range(7)), jobs=2, config=_QUICK, start_method="fork"
        )
        assert results == [0, 2, 4, 6, 8, 10, 12]
        assert degradations == [] and failures == []

    def test_spawn_workers(self):
        # Spawn re-imports the worker by qualified name: proves the
        # worker loop and this module's workers are spawn-safe.
        results, degradations, _failures = supervise(
            _double, [3, 4], jobs=2, config=_QUICK, start_method="spawn"
        )
        assert results == [6, 8]
        assert degradations == []

    def test_empty_task_list(self):
        assert supervise(_double, [], jobs=2) == ([], [], [])


class TestRetry:
    def test_sigkilled_worker_is_retried(self, tmp_path):
        marker = str(tmp_path / "kill.marker")
        results, degradations, failures = supervise(
            _kill_on_first_attempt,
            [(4, marker)],
            jobs=2,
            config=_QUICK,
            start_method="fork",
        )
        assert results == [40]
        assert degradations == []
        assert [f.reason for f in failures] == ["worker-crash"]
        assert failures[0].shard_index == 0 and failures[0].attempt == 0

    def test_shard_deadline_kills_stalled_worker(self, tmp_path):
        # The stalled worker still heartbeats (its heartbeat thread is
        # alive) — only the per-shard deadline can catch it.
        marker = str(tmp_path / "stall.marker")
        config = SupervisorConfig(
            max_retries=2,
            backoff_base_s=0.01,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=30.0,
            shard_deadline_s=0.5,
        )
        results, degradations, failures = supervise(
            _stall_on_first_attempt,
            [(5, marker)],
            jobs=1,
            config=config,
            start_method="fork",
        )
        assert results == [50]
        assert degradations == []
        assert [f.reason for f in failures] == ["shard-deadline"]

    def test_other_tasks_complete_while_one_retries(self, tmp_path):
        marker = str(tmp_path / "mixed.marker")
        tasks = [(1, marker), (2, str(tmp_path / "unused1")), (3, str(tmp_path / "unused2"))]
        # Pre-claim the unused markers so only task 0 ever faults.
        _first_visit(tasks[1][1])
        _first_visit(tasks[2][1])
        results, degradations, failures = supervise(
            _kill_on_first_attempt,
            tasks,
            jobs=2,
            config=_QUICK,
            start_method="fork",
        )
        assert results == [10, 20, 30]
        assert degradations == []
        assert {f.shard_index for f in failures} == {0}


class TestDegradation:
    def test_exhausted_retries_fall_back_to_parent_process(self):
        # The worker only succeeds in the parent's own process: every
        # pool dispatch raises, and the serial fallback completes it.
        results, degradations, failures = supervise(
            _succeed_only_in_process,
            [(10, os.getpid()), (20, os.getpid())],
            jobs=2,
            config=SupervisorConfig(max_retries=1, backoff_base_s=0.01),
            start_method="fork",
        )
        assert results == [11, 21]
        assert len(degradations) == 2
        for item in degradations:
            assert isinstance(item, Degradation)
            assert item.reason == "worker-error"
            assert item.retries == 2  # attempts 0 and 1 both dispatched
            assert "re-ran serially" in item.describe()
        # Every dispatch failed before the fallback: 2 shards x 2 attempts.
        assert len(failures) == 4

    def test_degrade_false_raises_supervision_error(self):
        with pytest.raises(SupervisionError) as excinfo:
            supervise(
                _always_raise,
                ["t0"],
                jobs=1,
                config=SupervisorConfig(
                    max_retries=0, backoff_base_s=0.01, degrade=False
                ),
                start_method="fork",
            )
        error = excinfo.value
        assert error.shard == 0
        assert error.reason == "worker-error"
        assert error.attempts == 1


class TestFatalErrors:
    def test_budget_error_propagates_without_retry(self):
        with pytest.raises(BudgetExceededError) as excinfo:
            supervise(
                _raise_budget_error,
                ["t0", "t1"],
                jobs=2,
                config=_QUICK,
                start_method="fork",
            )
        assert excinfo.value.resource == "fdd-nodes"
        assert excinfo.value.limit == 2


class TestConfig:
    def test_backoff_is_deterministic_and_grows(self):
        config = SupervisorConfig(seed=7)
        first = config.backoff_s(0, 1)
        assert first == config.backoff_s(0, 1)  # same seed, same jitter
        assert first > 0
        assert config.backoff_s(0, 3) > config.backoff_s(0, 1)

    def test_jitter_desynchronizes_shards(self):
        config = SupervisorConfig(seed=7)
        values = {config.backoff_s(shard, 1) for shard in range(8)}
        assert len(values) > 1

    def test_zero_jitter_is_pure_exponential(self):
        config = SupervisorConfig(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_jitter=0.0
        )
        assert config.backoff_s(3, 1) == pytest.approx(0.1)
        assert config.backoff_s(3, 2) == pytest.approx(0.2)
        assert config.backoff_s(3, 3) == pytest.approx(0.4)
