"""Tests for the sharded parallel comparison engine (:mod:`repro.parallel`).

The core correctness property is *summary parity*: the merged result of
a sharded run must be byte-identical (as canonical JSON) to the serial
engine's summary, for any shard count, including under guard budgets and
injected faults.  Inline execution (no processes, identical math) makes
that property-testable; small targeted tests then cover the real
fork/spawn pools, budget aggregation, and exception transport.
"""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    BudgetExceededError,
    CancelledError,
    FaultInjectedError,
    NotComprehensiveError,
    ParseError,
    SchemaError,
    SupervisionError,
)
from repro.fdd.fast import compare_fast
from repro.fields import toy_schema
from repro.guard import Budget, FaultInjector
from repro.intervals import IntervalSet
from repro.parallel import (
    compare_many,
    compare_parallel,
    compare_sharded,
    comparison_summary,
    plan_shards,
    restrict_to_shard,
)
from tests.conftest import brute_force_diff, firewalls

SCHEMA = toy_schema(29, 9, 9)


def make_firewall(seed: int, n_rules: int = 6, schema=SCHEMA):
    """Deterministic random comprehensive firewall (no hypothesis)."""
    import random

    from repro.policy import ACCEPT, DISCARD, Firewall, Predicate, Rule

    rng = random.Random(seed)
    rules = []
    for _ in range(n_rules - 1):
        sets = []
        for field in schema:
            hi_max = field.domain.hi
            lo = rng.randint(0, hi_max)
            hi = rng.randint(lo, hi_max)
            values = IntervalSet.span(lo, hi)
            if rng.random() < 0.3:
                lo2 = rng.randint(0, hi_max)
                values = values.union(IntervalSet.span(lo2, rng.randint(lo2, hi_max)))
            sets.append(values)
        rules.append(Rule(Predicate(schema, tuple(sets)), rng.choice([ACCEPT, DISCARD])))
    rules.append(Rule(Predicate(schema, tuple(f.domain_set for f in schema)), rng.choice([ACCEPT, DISCARD])))
    return Firewall(schema, rules)


def serial_summary(fw_a, fw_b) -> dict:
    return comparison_summary(compare_fast(fw_a, fw_b))


def canonical(summary: dict) -> str:
    return json.dumps(summary, sort_keys=True)


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------


class TestPlanShards:
    @given(
        firewalls(SCHEMA, max_rules=6),
        firewalls(SCHEMA, max_rules=6),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=60, deadline=None)
    def test_shards_partition_the_root_domain(self, fw_a, fw_b, jobs):
        shards = plan_shards(fw_a, fw_b, jobs)
        assert 1 <= len(shards) <= jobs
        union = IntervalSet.empty()
        for shard in shards:
            assert not shard.is_empty()
            assert shard.intersect(union).is_empty()
            union = union.union(shard)
        assert union == SCHEMA.domain(0)
        # shards ascend in field 0
        maxima = [shard.max() for shard in shards]
        assert maxima == sorted(maxima)

    def test_mismatched_schemas_rejected(self):
        fw = make_firewall(1)
        other = make_firewall(2, schema=toy_schema(5, 5))
        with pytest.raises(SchemaError):
            plan_shards(fw, other, 2)


class TestRestrictToShard:
    @given(firewalls(SCHEMA, max_rules=6))
    @settings(max_examples=40, deadline=None)
    def test_restriction_preserves_semantics_inside_the_shard(self, fw):
        shard = IntervalSet.span(5, 14)
        restricted = restrict_to_shard(fw, shard)
        for v0 in (5, 9, 14):
            for v1 in (0, 9):
                packet = (v0, v1, 3)
                assert restricted(packet) == fw(packet)


# ----------------------------------------------------------------------
# Summary parity (the tentpole property)
# ----------------------------------------------------------------------


class TestSummaryParity:
    @given(
        firewalls(SCHEMA, max_rules=6),
        firewalls(SCHEMA, max_rules=6),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_sharded_summary_is_byte_identical_to_serial(self, fw_a, fw_b, jobs):
        serial = serial_summary(fw_a, fw_b)
        par = compare_parallel(fw_a, fw_b, jobs=jobs, inline=True)
        assert canonical(par.summary()) == canonical(serial)

    @given(
        firewalls(toy_schema(7, 5), max_rules=4),
        firewalls(toy_schema(7, 5), max_rules=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_disputed_count_matches_brute_force(self, fw_a, fw_b):
        par = compare_parallel(fw_a, fw_b, jobs=3, inline=True)
        assert par.disputed_packets == len(brute_force_diff(fw_a, fw_b))

    @given(
        firewalls(SCHEMA, max_rules=5),
        firewalls(SCHEMA, max_rules=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_discrepancy_volumes_match_serial(self, fw_a, fw_b):
        diff = compare_fast(fw_a, fw_b)
        par = compare_parallel(
            fw_a, fw_b, jobs=4, inline=True, enumerate_discrepancies=True
        )
        assert sum(d.size() for d in par.discrepancies) == sum(
            d.size() for d in diff.discrepancies()
        )

    def test_single_edge_collapse_is_reanchored(self):
        # Policies that ignore field 0 entirely: the product walk collapses
        # the root level, which over-counted shards before re-anchoring.
        from repro.policy import ACCEPT, DISCARD, Rule

        fw_a = type(self)._const_fw(ACCEPT)
        fw_b = type(self)._const_fw(DISCARD, narrow=True)
        serial = serial_summary(fw_a, fw_b)
        for jobs in (2, 5):
            par = compare_parallel(fw_a, fw_b, jobs=jobs, inline=True)
            assert canonical(par.summary()) == canonical(serial)

    @staticmethod
    def _const_fw(default, *, narrow=False):
        from repro.policy import ACCEPT, Firewall, Rule

        rules = []
        if narrow:
            rules.append(Rule.build(SCHEMA, ACCEPT, F2=(2, 4)))
        rules.append(Rule.build(SCHEMA, default))
        return Firewall(SCHEMA, rules)


# ----------------------------------------------------------------------
# Guard propagation
# ----------------------------------------------------------------------


class TestGuardPropagation:
    def _pair(self):
        return make_firewall(11, 8), make_firewall(12, 8)

    def test_tiny_budget_trips(self):
        fw_a, fw_b = self._pair()
        with pytest.raises(BudgetExceededError) as excinfo:
            compare_parallel(fw_a, fw_b, jobs=3, inline=True, budget=Budget(max_nodes=2))
        assert excinfo.value.resource == "fdd-nodes"

    def test_aggregate_spend_is_enforced_across_shards(self):
        # Each shard individually fits in the budget, but their sum does
        # not: the merge-side re-ticking must trip.
        fw_a, fw_b = self._pair()
        unguarded = compare_parallel(fw_a, fw_b, jobs=4, inline=True,
                                     budget=Budget(max_nodes=10**9))
        total = unguarded.outcome["nodes_expanded"]
        per_shard = max(
            shard.progress["nodes_expanded"] for shard in unguarded.shards
        )
        if per_shard >= total:  # pragma: no cover - single-shard plan
            pytest.skip("plan produced one dominant shard")
        with pytest.raises(BudgetExceededError):
            # Generous enough for the largest single shard (each worker
            # gets the parent's remaining headroom, which shrinks as the
            # merge re-ticks), never for the aggregate.
            compare_sharded(
                fw_a,
                fw_b,
                plan_shards(fw_a, fw_b, 4),
                jobs=4,
                inline=True,
                budget=Budget(max_nodes=total - 1),
            )

    def test_within_budget_outcome_aggregates_shard_spend(self):
        fw_a, fw_b = self._pair()
        par = compare_parallel(
            fw_a, fw_b, jobs=3, inline=True, budget=Budget(max_nodes=10**9)
        )
        assert par.outcome is not None
        assert par.outcome["exhausted"] is None
        # Inline mode constructs once on the parent guard, then re-ticks
        # every shard's product-walk spend on merge.
        assert par.outcome["nodes_expanded"] == par.construction.get(
            "nodes_expanded", 0
        ) + sum(shard.progress["nodes_expanded"] for shard in par.shards)
        assert canonical(par.summary()) == canonical(serial_summary(fw_a, fw_b))

    def test_injected_fault_trips_like_serial(self):
        fw_a, fw_b = self._pair()
        serial_fault = FaultInjector()
        serial_fault.arm("fast.rule", after=2)
        with pytest.raises(FaultInjectedError):
            from repro.fdd.fast import construct_fdd_fast
            from repro.guard import GuardContext

            guard = GuardContext(Budget.unlimited(), fault=serial_fault)
            construct_fdd_fast(fw_a, guard=guard)
            construct_fdd_fast(fw_b, guard=guard)

        parallel_fault = FaultInjector()
        parallel_fault.arm("fast.rule", after=2)
        with pytest.raises(FaultInjectedError) as excinfo:
            compare_parallel(fw_a, fw_b, jobs=3, inline=True, fault=parallel_fault)
        assert excinfo.value.site == "fast.rule"


# ----------------------------------------------------------------------
# Real process pools
# ----------------------------------------------------------------------


class TestProcessPools:
    def _pair(self):
        return make_firewall(21, 10), make_firewall(22, 10)

    def test_fork_pool_matches_serial(self):
        fw_a, fw_b = self._pair()
        par = compare_parallel(
            fw_a, fw_b, jobs=2, inline=False, start_method="fork"
        )
        assert canonical(par.summary()) == canonical(serial_summary(fw_a, fw_b))

    def test_spawn_pool_matches_serial(self):
        # Spawn re-imports everything in the worker: proves all shipped
        # objects (firewalls, budgets, tasks) are truly picklable.
        fw_a, fw_b = self._pair()
        par = compare_parallel(
            fw_a, fw_b, jobs=2, inline=False, start_method="spawn"
        )
        assert canonical(par.summary()) == canonical(serial_summary(fw_a, fw_b))

    def test_budget_trip_crosses_process_boundary(self):
        fw_a, fw_b = self._pair()
        with pytest.raises(BudgetExceededError) as excinfo:
            compare_parallel(
                fw_a,
                fw_b,
                jobs=2,
                inline=False,
                start_method="fork",
                budget=Budget(max_nodes=2),
            )
        assert excinfo.value.resource == "fdd-nodes"
        assert excinfo.value.limit == 2


# ----------------------------------------------------------------------
# compare_many
# ----------------------------------------------------------------------


class TestCompareMany:
    def test_all_pairs_match_serial(self):
        team = [make_firewall(30 + i, 5) for i in range(4)]
        results = compare_many(team, jobs=2, inline=True)
        assert set(results) == {
            (i, j) for i in range(4) for j in range(i + 1, 4)
        }
        for (i, j), pair in results.items():
            diff = compare_fast(team[i], team[j])
            assert pair.disputed_packets == diff.disputed_packet_count()
            assert pair.equivalent() == (pair.disputed_packets == 0)

    def test_needs_two_firewalls(self):
        with pytest.raises(SchemaError):
            compare_many([make_firewall(40)], inline=True)


# ----------------------------------------------------------------------
# Exception transport (pickling through Pool result queues)
# ----------------------------------------------------------------------


#: Every picklable guard/transport exception, with all attributes set.
_PICKLABLE_ERRORS = [
    BudgetExceededError(
        "node budget exceeded: 11 > 10",
        resource="fdd-nodes",
        spent=11,
        limit=10,
        progress={"nodes_expanded": 11},
    ),
    CancelledError(site="fast.rule"),
    FaultInjectedError("fast.product"),
    NotComprehensiveError("no rule matches", witness=(1, 2, 3)),
    ParseError("bad token", line=7),
    SupervisionError(
        "shard 3 failed after 2 attempt(s): worker-crash",
        shard=3,
        reason="worker-crash",
        attempts=2,
    ),
]

#: Attributes the round trip must preserve (whichever exist per error).
_PRESERVED_ATTRS = (
    "resource",
    "spent",
    "limit",
    "progress",
    "site",
    "witness",
    "line",
    "shard",
    "reason",
    "attempts",
)


def _round_trip_error(error):
    """Worker target: re-pickle the exception in a child process."""
    return pickle.loads(pickle.dumps(error))


def _raise_error(error):
    """Worker target: raise the exception (Pool pickles it back)."""
    raise error


def _assert_clone(clone, error) -> None:
    assert type(clone) is type(error)
    assert str(clone) == str(error)
    for attr in _PRESERVED_ATTRS:
        if hasattr(error, attr):
            assert getattr(clone, attr) == getattr(error, attr)


class TestExceptionPickling:
    @pytest.mark.parametrize("error", _PICKLABLE_ERRORS)
    def test_round_trip_preserves_attributes(self, error):
        _assert_clone(pickle.loads(pickle.dumps(error)), error)

    def test_spawn_worker_round_trip_preserves_attributes(self):
        # Fork inherits the parent's memory, so only spawn proves the
        # reduce hooks rebuild these errors in a fresh interpreter —
        # both as return values and raised through the result queue.
        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        with ctx.Pool(1) as pool:
            for error in _PICKLABLE_ERRORS:
                _assert_clone(pool.apply(_round_trip_error, (error,)), error)
                with pytest.raises(type(error)) as excinfo:
                    pool.apply(_raise_error, (error,))
                _assert_clone(excinfo.value, error)
