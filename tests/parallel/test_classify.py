"""Parallel classification: artifact shipping and in-order merging."""

import pickle

import pytest

from repro.classify import compile_firewall
from repro.fields import PacketSampler
from repro.parallel import classify_parallel
from repro.synth import SyntheticFirewallGenerator


@pytest.fixture(scope="module")
def setup():
    firewall = SyntheticFirewallGenerator(seed=11).generate(40)
    matcher = compile_firewall(firewall)
    packets = PacketSampler(firewall.schema, seed=11).uniform_many(203)
    return matcher, packets, matcher.classify_batch(packets)


class TestInline:
    def test_matches_serial_batch(self, setup):
        matcher, packets, expected = setup
        assert classify_parallel(matcher, packets, jobs=2, inline=True) == expected

    def test_uneven_chunking_preserves_order(self, setup):
        matcher, packets, expected = setup
        # 203 packets across 4 jobs: chunks of 51/51/51/50.
        assert classify_parallel(matcher, packets, jobs=4, inline=True) == expected

    def test_more_jobs_than_packets(self, setup):
        matcher, packets, expected = setup
        few = packets[:3]
        assert classify_parallel(matcher, few, jobs=8, inline=True) == expected[:3]

    def test_empty_batch(self, setup):
        matcher, _, _ = setup
        assert classify_parallel(matcher, [], jobs=4, inline=True) == []

    def test_iterable_input(self, setup):
        matcher, packets, expected = setup
        assert (
            classify_parallel(matcher, iter(packets), jobs=2, inline=True)
            == expected
        )


class TestPool:
    def test_worker_processes_match_serial(self, setup):
        matcher, packets, expected = setup
        assert classify_parallel(matcher, packets, jobs=2) == expected

    def test_artifact_round_trips_to_workers(self, setup):
        # The worker-side contract: what ships is the pickled artifact.
        matcher, packets, expected = setup
        clone = pickle.loads(pickle.dumps(matcher))
        assert classify_parallel(clone, packets, jobs=2) == expected
