"""Lifecycle tests for the persistent worker pool (:mod:`repro.parallel.pool`).

The pool's contract is amortization without leaks: workers outlive any
single comparison (start cost is paid once per process), yet a fault or
budget trip mid-comparison must never strand a busy worker, a shared
snapshot, or a shared-memory segment.  These tests drive the pool
through the public engine entry points and audit its bookkeeping
(:meth:`WorkerPool.stats`, the snapshot registry) between calls.
"""

from __future__ import annotations

import pytest

from repro.exceptions import BudgetExceededError
from repro.guard import Budget
from repro.parallel import (
    compare_many,
    compare_parallel,
    get_pool,
    shutdown_pools,
)
from repro.parallel.pool import _SNAPSHOT_DATA, _SNAPSHOT_OBJECTS

from tests.parallel.test_parallel import canonical, make_firewall, serial_summary


@pytest.fixture(autouse=True)
def _fresh_pools():
    """Each test starts and ends with no live pools (and proves that a
    torn-down pool restarts transparently on next use)."""
    shutdown_pools()
    yield
    shutdown_pools()


def _pair():
    return make_firewall(61, 10), make_firewall(62, 10)


class TestPoolReuse:
    def test_workers_survive_across_comparisons(self):
        fw_a, fw_b = _pair()
        expected = canonical(serial_summary(fw_a, fw_b))
        for _ in range(3):
            par = compare_parallel(
                fw_a, fw_b, jobs=2, inline=False, start_method="fork"
            )
            assert canonical(par.summary()) == expected
        stats = get_pool("fork").stats()
        assert stats["spawned_total"] == 2, "pool respawned between comparisons"
        assert stats["alive"] == stats["idle"] == 2
        assert stats["busy"] == 0

    def test_workers_survive_across_compare_many_calls(self):
        team = [make_firewall(70 + i, 6) for i in range(3)]
        first = compare_many(team, jobs=2, inline=False, start_method="fork")
        spawned_after_first = get_pool("fork").stats()["spawned_total"]
        second = compare_many(team, jobs=2, inline=False, start_method="fork")
        assert get_pool("fork").stats()["spawned_total"] == spawned_after_first
        assert {k: v.disputed_packets for k, v in first.items()} == {
            k: v.disputed_packets for k, v in second.items()
        }

    def test_compare_many_publishes_one_snapshot_per_policy(self):
        # The pair matrix must share policy snapshots: t publications
        # for t team versions, never one per pair (t choose 2) and never
        # a per-pair re-publish.
        team = [make_firewall(80 + i, 6) for i in range(4)]
        pairs = len(team) * (len(team) - 1) // 2
        results = compare_many(team, jobs=2, inline=False, start_method="fork")
        assert len(results) == pairs
        stats = get_pool("fork").stats()
        assert stats["snapshots_published"] == len(team), (
            f"expected one snapshot per policy ({len(team)}), got "
            f"{stats['snapshots_published']} — the pair matrix is "
            "re-publishing per pair"
        )
        # All retired afterwards: nothing leaks across calls.
        assert not _SNAPSHOT_DATA
        assert not _SNAPSHOT_OBJECTS
        assert not get_pool("fork")._segments
        # And the shared-snapshot numbers are the serial engine's.
        from repro.fdd.fast import compare_fast

        for (i, j), pc in results.items():
            assert (
                pc.disputed_packets
                == compare_fast(team[i], team[j]).disputed_packet_count()
            )

    def test_spawn_pool_parity_and_reuse(self):
        # Spawn re-imports everything worker-side: proves snapshot
        # payloads and tasks survive a cold interpreter, not just fork
        # memory inheritance.
        fw_a, fw_b = _pair()
        expected = canonical(serial_summary(fw_a, fw_b))
        for _ in range(2):
            par = compare_parallel(
                fw_a, fw_b, jobs=2, inline=False, start_method="spawn"
            )
            assert canonical(par.summary()) == expected
        stats = get_pool("spawn").stats()
        assert stats["spawned_total"] == 2
        assert stats["busy"] == 0


class TestNoLeaks:
    def test_budget_trip_leaves_no_busy_workers(self):
        fw_a, fw_b = _pair()
        with pytest.raises(BudgetExceededError):
            compare_parallel(
                fw_a,
                fw_b,
                jobs=2,
                inline=False,
                start_method="fork",
                budget=Budget(max_nodes=2),
            )
        stats = get_pool("fork").stats()
        assert stats["busy"] == 0, "worker left mid-task after budget trip"
        assert stats["alive"] == stats["idle"]
        # The pool remains serviceable: the next comparison is correct
        # without a restart.
        par = compare_parallel(
            fw_a, fw_b, jobs=2, inline=False, start_method="fork"
        )
        assert canonical(par.summary()) == canonical(serial_summary(fw_a, fw_b))

    def test_snapshots_are_retired_after_success(self):
        fw_a, fw_b = _pair()
        compare_parallel(fw_a, fw_b, jobs=2, inline=False, start_method="fork")
        assert not _SNAPSHOT_DATA, "snapshot registry leaked entries"
        assert not _SNAPSHOT_OBJECTS, "live snapshot objects leaked"
        assert not get_pool("fork")._segments, "shared-memory segment leaked"

    def test_snapshots_are_retired_after_budget_trip(self):
        fw_a, fw_b = _pair()
        with pytest.raises(BudgetExceededError):
            compare_parallel(
                fw_a,
                fw_b,
                jobs=2,
                inline=False,
                start_method="fork",
                budget=Budget(max_nodes=2),
            )
        assert not _SNAPSHOT_DATA
        assert not get_pool("fork")._segments


class TestTransports:
    def test_bytes_fallback_matches_shared_memory(self, monkeypatch):
        # Force publish_snapshot's pickled-bytes fallback by making
        # shared-memory segment creation unavailable, exactly as on a
        # platform without /dev/shm.
        import multiprocessing.shared_memory as shm

        def _unavailable(*args, **kwargs):
            raise OSError("shared memory disabled for this test")

        monkeypatch.setattr(shm, "SharedMemory", _unavailable)
        fw_a, fw_b = _pair()
        par = compare_parallel(
            fw_a, fw_b, jobs=2, inline=False, start_method="fork"
        )
        assert canonical(par.summary()) == canonical(serial_summary(fw_a, fw_b))
        assert get_pool("fork").stats()["snapshots_published"] >= 1


class TestShutdown:
    def test_shutdown_is_graceful_and_restartable(self):
        fw_a, fw_b = _pair()
        compare_parallel(fw_a, fw_b, jobs=2, inline=False, start_method="fork")
        pool = get_pool("fork")
        workers = list(pool._workers)
        assert workers and all(w.alive() for w in workers)
        shutdown_pools()
        for worker in workers:
            worker.process.join(timeout=10)
            assert not worker.process.is_alive()
            # close()+join(), never terminate(): a SIGTERM'd worker
            # reports a negative exitcode and would have skipped its
            # atexit hooks (coverage, profilers).
            assert worker.process.exitcode == 0
        # A fresh pool lazily restarts on the next call.
        par = compare_parallel(
            fw_a, fw_b, jobs=2, inline=False, start_method="fork"
        )
        assert canonical(par.summary()) == canonical(serial_summary(fw_a, fw_b))
        assert get_pool("fork").stats()["alive"] == 2
