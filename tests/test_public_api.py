"""API hygiene: the public surface is importable, documented, and stable."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.addr",
    "repro.analysis",
    "repro.bdd",
    "repro.bench",
    "repro.classify",
    "repro.fdd",
    "repro.fields",
    "repro.intervals",
    "repro.policy",
    "repro.serve",
    "repro.stateful",
    "repro.synth",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    module = importlib.import_module(package_name)
    assert hasattr(module, "__all__"), f"{package_name} must declare __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package_name}.{name} in __all__ but missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_sorted_unique(package_name):
    module = importlib.import_module(package_name)
    exported = list(module.__all__)
    assert len(exported) == len(set(exported)), f"duplicates in {package_name}.__all__"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_callables_documented(package_name):
    module = importlib.import_module(package_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, (
        f"{package_name} exports without docstrings: {undocumented}"
    )


def test_public_classes_have_documented_public_methods():
    from repro.analysis import DiverseDesignSession
    from repro.fields import FieldSchema
    from repro.intervals import IntervalSet
    from repro.policy import Firewall, Predicate, Rule
    from repro.stateful import ConnectionTable, StatefulFirewall

    missing = []
    for cls in (
        IntervalSet,
        FieldSchema,
        Predicate,
        Rule,
        Firewall,
        DiverseDesignSession,
        ConnectionTable,
        StatefulFirewall,
    ):
        for name, member in vars(cls).items():
            if name.startswith("_"):
                continue
            func = member.fget if isinstance(member, property) else member
            if callable(func) or isinstance(member, property):
                doc = getattr(func, "__doc__", None)
                if not (doc or "").strip():
                    missing.append(f"{cls.__name__}.{name}")
    assert not missing, f"undocumented public methods: {missing}"


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_exceptions_hierarchy():
    from repro import exceptions

    base = exceptions.ReproError
    for name in dir(exceptions):
        obj = getattr(exceptions, name)
        if inspect.isclass(obj) and issubclass(obj, Exception) and obj is not base:
            assert issubclass(obj, base), f"{name} must derive from ReproError"
