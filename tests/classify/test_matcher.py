"""Matcher behavior: pickling, equality, batch dispatch, tallies."""

import pickle

import pytest

from repro.classify import compile_firewall
from repro.classify.matcher import FORMAT_VERSION, KERNEL_MIN_BATCH
from repro.fields import PacketSampler, toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Rule
from repro.synth import SyntheticFirewallGenerator


@pytest.fixture
def firewall():
    schema = toy_schema(9, 9, 9)
    return Firewall(
        schema,
        [
            Rule.build(schema, DISCARD, F1=(2, 4)),
            Rule.build(schema, ACCEPT, F2=(3, 7), F3=(0, 4)),
            Rule.build(schema, ACCEPT),
        ],
    )


@pytest.fixture
def matcher(firewall):
    return compile_firewall(firewall)


@pytest.fixture
def packets(firewall):
    return PacketSampler(firewall.schema, seed=5).uniform_many(200)


class TestPickle:
    def test_round_trip_equal_and_behaviorally_identical(self, matcher, packets):
        clone = pickle.loads(pickle.dumps(matcher))
        assert clone == matcher
        assert hash(clone) == hash(matcher)
        assert clone.classify_batch(packets) == matcher.classify_batch(packets)

    def test_kernel_cache_not_pickled(self, matcher, packets):
        matcher.classify_batch(packets)  # force the lazy kernel build
        state = matcher.__getstate__()
        assert "_kernel" not in state and "kernel" not in state

    def test_unknown_format_version_refused(self, matcher):
        state = matcher.__getstate__()
        state["format"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format"):
            type(matcher).__new__(type(matcher)).__setstate__(state)


class TestEquality:
    def test_same_policy_compiles_equal(self, firewall):
        assert compile_firewall(firewall) == compile_firewall(firewall)

    def test_different_policy_compiles_unequal(self, firewall, matcher):
        schema = firewall.schema
        other = Firewall(schema, [Rule.build(schema, DISCARD)])
        assert compile_firewall(other) != matcher

    def test_not_equal_to_other_types(self, matcher):
        assert matcher != object() and matcher != 3


class TestBatchDispatch:
    def test_small_batches_never_touch_the_kernel(self, matcher, packets):
        small = packets[: KERNEL_MIN_BATCH - 1]
        boom = pytest.fail  # any kernel use would call into this

        class Exploding:
            def classify_batch(self, _):
                boom("scalar-size batch routed through the kernel")

        matcher._kernel = Exploding()
        assert matcher.classify_batch(small) == [
            matcher.classify(p) for p in small
        ]

    def test_batch_matches_scalar_loop(self, matcher, packets):
        assert matcher.classify_batch(packets) == [
            matcher.classify(p) for p in packets
        ]

    def test_iterables_accepted(self, matcher, packets):
        assert matcher.classify_batch(iter(packets)) == matcher.classify_batch(
            packets
        )

    def test_empty_batch(self, matcher):
        assert matcher.classify_batch([]) == []

    def test_tally_matches_batch(self, matcher, packets):
        decisions = matcher.classify_batch(packets)
        expected: dict = {}
        for decision in decisions:
            expected[decision] = expected.get(decision, 0) + 1
        assert matcher.tally(packets) == expected

    def test_call_is_classify(self, matcher, packets):
        assert matcher(packets[0]) == matcher.classify(packets[0])


class TestStandardSchema:
    def test_batch_parity_on_synthetic_policy(self):
        firewall = SyntheticFirewallGenerator(seed=17).generate(60)
        matcher = compile_firewall(firewall)
        packets = PacketSampler(firewall.schema, seed=17).uniform_many(500)
        assert matcher.classify_batch(packets) == [
            firewall.evaluate(p) for p in packets
        ]

    def test_repr_mentions_shape(self):
        firewall = SyntheticFirewallGenerator(seed=17).generate(10)
        matcher = compile_firewall(firewall)
        text = repr(matcher)
        assert "nodes" in text and "segments" in text
