"""Compiler correctness: exact lowering, validation, budgets."""

import pytest

from repro.classify import CompiledMatcher, compile_fdd, compile_firewall
from repro.exceptions import BudgetExceededError, FDDError
from repro.fdd import construct_fdd, reduce_fdd
from repro.fdd.fast import construct_fdd_fast
from repro.fdd.fdd import FDD
from repro.fdd.node import Edge, InternalNode, TerminalNode
from repro.fields import enumerate_universe, toy_schema
from repro.guard import Budget, GuardContext
from repro.intervals import IntervalSet
from repro.policy import ACCEPT, DISCARD, Firewall, Rule


@pytest.fixture
def firewall3():
    schema = toy_schema(9, 9, 9)
    return Firewall(
        schema,
        [
            Rule.build(schema, DISCARD, F1=(2, 4), F2=(0, 5)),
            Rule.build(schema, ACCEPT, F2=(3, 7)),
            Rule.build(schema, DISCARD, F3=(8, 9)),
            Rule.build(schema, ACCEPT),
        ],
    )


class TestExactness:
    def test_exhaustive_parity_with_both_engines(self, firewall3):
        fast = construct_fdd_fast(firewall3)
        matcher = compile_fdd(fast)
        tree_matcher = compile_fdd(reduce_fdd(construct_fdd(firewall3)))
        for packet in enumerate_universe(firewall3.schema):
            expected = firewall3.evaluate(packet)
            assert matcher.classify(packet) == expected
            assert tree_matcher.classify(packet) == expected

    def test_compile_firewall_shortcut(self, firewall3):
        matcher = compile_firewall(firewall3)
        assert matcher == compile_fdd(construct_fdd_fast(firewall3))

    def test_deterministic_recompile(self, firewall3):
        a = compile_firewall(firewall3)
        b = compile_firewall(firewall3)
        assert a == b and hash(a) == hash(b)

    def test_accepts_raw_value_tuples(self, firewall3):
        matcher = compile_firewall(firewall3)
        assert matcher((3, 1, 0)) == firewall3.evaluate((3, 1, 0))

    def test_terminal_root_compiles(self):
        schema = toy_schema(9, 9)
        fdd = FDD(schema, TerminalNode(ACCEPT))
        matcher = compile_fdd(fdd)
        assert matcher.node_count == 0
        assert all(
            matcher.classify(p) == ACCEPT for p in enumerate_universe(schema)
        )

    def test_skipped_field_compiles(self):
        # Root tests F1 only; F2 is never tested on any path.
        schema = toy_schema(9, 9)
        root = InternalNode(
            0,
            [
                Edge(IntervalSet.of((0, 4)), TerminalNode(ACCEPT)),
                Edge(IntervalSet.of((5, 9)), TerminalNode(DISCARD)),
            ],
        )
        fdd = FDD(schema, root)
        matcher = compile_fdd(fdd)
        for packet in enumerate_universe(schema):
            assert matcher.classify(packet) == fdd.evaluate(packet)

    def test_shared_subgraph_compiles_once(self, firewall3):
        fdd = construct_fdd_fast(firewall3)
        matcher = compile_fdd(fdd)
        seen: set[int] = set()

        def count(node) -> None:
            if isinstance(node, TerminalNode) or id(node) in seen:
                return
            seen.add(id(node))
            for edge in node.edges:
                count(edge.target)

        count(fdd.root)
        assert matcher.node_count == len(seen)


class TestValidation:
    def test_gap_in_labels_rejected(self):
        schema = toy_schema(9)
        root = InternalNode(
            0,
            [
                Edge(IntervalSet.of((0, 3)), TerminalNode(ACCEPT)),
                Edge(IntervalSet.of((5, 9)), TerminalNode(DISCARD)),
            ],
        )
        with pytest.raises(FDDError, match="skip or overlap at value 4"):
            compile_fdd(FDD(schema, root))

    def test_overlapping_labels_rejected(self):
        schema = toy_schema(9)
        root = InternalNode(
            0,
            [
                Edge(IntervalSet.of((0, 5)), TerminalNode(ACCEPT)),
                Edge(IntervalSet.of((4, 9)), TerminalNode(DISCARD)),
            ],
        )
        with pytest.raises(FDDError, match="skip or overlap"):
            compile_fdd(FDD(schema, root))

    def test_truncated_domain_rejected(self):
        schema = toy_schema(9)
        root = InternalNode(
            0, [Edge(IntervalSet.of((0, 7)), TerminalNode(ACCEPT))]
        )
        with pytest.raises(FDDError, match="stop at 7, domain ends at 9"):
            compile_fdd(FDD(schema, root))

    def test_unknown_field_rejected(self):
        schema = toy_schema(9)
        root = InternalNode(
            3, [Edge(IntervalSet.of((0, 9)), TerminalNode(ACCEPT))]
        )
        with pytest.raises(FDDError, match="unknown field 3"):
            compile_fdd(FDD(schema, root))


class TestBudget:
    def test_node_budget_trips(self, firewall3):
        fdd = construct_fdd_fast(firewall3)
        guard = GuardContext(Budget(max_nodes=1))
        with pytest.raises(BudgetExceededError):
            compile_fdd(fdd, guard=guard)

    def test_sufficient_budget_passes(self, firewall3):
        fdd = construct_fdd_fast(firewall3)
        guard = GuardContext(Budget(max_nodes=10_000))
        assert isinstance(compile_fdd(fdd, guard=guard), CompiledMatcher)


class TestAccounting:
    def test_size_bytes_matches_array_payload(self, firewall3):
        matcher = compile_firewall(firewall3)
        expected = (
            2 * matcher.node_count  # node_field: int16
            + 8 * (matcher.node_count + 1)  # node_off: int64
            + 16 * matcher.segment_count  # bounds + targets: int64 each
        )
        assert matcher.size_bytes() == expected

    def test_stats_shape(self, firewall3):
        stats = compile_firewall(firewall3).stats()
        assert set(stats) == {
            "nodes",
            "segments",
            "decisions",
            "fields",
            "size_bytes",
        }
        assert stats["fields"] == 3
        assert stats["segments"] >= stats["nodes"]
