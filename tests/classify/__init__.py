"""Tests for the flat-array classifier compiler and kernels."""
