"""Level-kernel correctness: exact parity with the scalar path, and the
fallbacks that keep batch classification working when the kernel can't
be built (no numpy, unordered diagram, oversized tables)."""

import pytest

from repro.classify import compile_fdd, compile_firewall
from repro.classify.kernels import HAVE_NUMPY, build_batch_kernel
from repro.fdd.fdd import FDD
from repro.fdd.node import Edge, InternalNode, TerminalNode
from repro.fields import PacketSampler, enumerate_universe, toy_schema
from repro.intervals import IntervalSet
from repro.policy import ACCEPT, DISCARD, Firewall, Rule
from repro.synth import SyntheticFirewallGenerator

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def _toy_matcher():
    schema = toy_schema(9, 9, 9)
    firewall = Firewall(
        schema,
        [
            Rule.build(schema, DISCARD, F1=(2, 4), F3=(1, 8)),
            Rule.build(schema, ACCEPT, F2=(3, 7)),
            Rule.build(schema, DISCARD),
        ],
    )
    return compile_firewall(firewall)


@needs_numpy
class TestParity:
    def test_exhaustive_toy_parity(self):
        matcher = _toy_matcher()
        kernel = build_batch_kernel(matcher)
        assert kernel is not None
        packets = list(enumerate_universe(matcher.schema))
        assert kernel.classify_batch(packets) == matcher._classify_batch_scalar(
            packets
        )

    def test_standard_schema_parity(self):
        firewall = SyntheticFirewallGenerator(seed=31).generate(80)
        matcher = compile_firewall(firewall)
        kernel = build_batch_kernel(matcher)
        assert kernel is not None
        packets = PacketSampler(firewall.schema, seed=31).uniform_many(2000)
        assert kernel.classify_batch(packets) == matcher._classify_batch_scalar(
            packets
        )

    def test_staged_pipeline_equals_batch(self):
        matcher = _toy_matcher()
        kernel = matcher.batch_kernel()
        packets = PacketSampler(matcher.schema, seed=3).uniform_many(300)
        staged = kernel.stage(packets)
        indices = kernel.classify_indices(staged)
        assert kernel.decisions_for(indices) == kernel.classify_batch(packets)

    def test_tally_indices_matches(self):
        matcher = _toy_matcher()
        kernel = matcher.batch_kernel()
        packets = PacketSampler(matcher.schema, seed=3).uniform_many(300)
        indices = kernel.classify_indices(kernel.stage(packets))
        expected: dict = {}
        for decision in kernel.decisions_for(indices):
            expected[decision] = expected.get(decision, 0) + 1
        assert kernel.tally_indices(indices) == expected

    def test_terminal_root(self):
        schema = toy_schema(9, 9)
        matcher = compile_fdd(FDD(schema, TerminalNode(ACCEPT)))
        kernel = build_batch_kernel(matcher)
        assert kernel is not None
        packets = list(enumerate_universe(schema))
        assert kernel.classify_batch(packets) == [ACCEPT] * len(packets)

    def test_skipped_trailing_field(self):
        # F2 never tested: every state is carried through level 1.
        schema = toy_schema(9, 9)
        root = InternalNode(
            0,
            [
                Edge(IntervalSet.of((0, 4)), TerminalNode(ACCEPT)),
                Edge(IntervalSet.of((5, 9)), TerminalNode(DISCARD)),
            ],
        )
        matcher = compile_fdd(FDD(schema, root))
        kernel = build_batch_kernel(matcher)
        assert kernel is not None
        packets = list(enumerate_universe(schema))
        assert kernel.classify_batch(packets) == matcher._classify_batch_scalar(
            packets
        )

    def test_skipped_leading_field(self):
        # Root tests F2; level 0 only carries the root state through.
        schema = toy_schema(9, 9)
        root = InternalNode(
            1,
            [
                Edge(IntervalSet.of((0, 6)), TerminalNode(ACCEPT)),
                Edge(IntervalSet.of((7, 9)), TerminalNode(DISCARD)),
            ],
        )
        matcher = compile_fdd(FDD(schema, root))
        kernel = build_batch_kernel(matcher)
        assert kernel is not None
        packets = list(enumerate_universe(schema))
        assert kernel.classify_batch(packets) == matcher._classify_batch_scalar(
            packets
        )

    def test_size_bytes_positive(self):
        kernel = _toy_matcher().batch_kernel()
        assert kernel.size_bytes() > 0


@needs_numpy
class TestFallbacks:
    def test_unordered_diagram_returns_none(self):
        # Root tests F2 with children testing F1: not schema-ordered.
        schema = toy_schema(9, 9)
        child = InternalNode(
            0,
            [
                Edge(IntervalSet.of((0, 4)), TerminalNode(ACCEPT)),
                Edge(IntervalSet.of((5, 9)), TerminalNode(DISCARD)),
            ],
        )
        root = InternalNode(
            1,
            [
                Edge(IntervalSet.of((0, 6)), child),
                Edge(IntervalSet.of((7, 9)), TerminalNode(DISCARD)),
            ],
        )
        matcher = compile_fdd(FDD(schema, root))
        assert build_batch_kernel(matcher) is None
        # The public batch API still answers, via the scalar loop.
        packets = list(enumerate_universe(schema))
        fdd = FDD(schema, root)
        assert matcher.classify_batch(packets) == [
            fdd.evaluate(p) for p in packets
        ]

    def test_table_cell_limit_falls_back(self, monkeypatch):
        import repro.classify.kernels as kernels

        matcher = _toy_matcher()
        monkeypatch.setattr(kernels, "TABLE_CELL_LIMIT", 1)
        assert build_batch_kernel(matcher) is None
        packets = PacketSampler(matcher.schema, seed=7).uniform_many(64)
        assert matcher.classify_batch(packets) == [
            matcher.classify(p) for p in packets
        ]


class TestWithoutNumpy:
    def test_batch_kernel_none_without_numpy(self, monkeypatch):
        import repro.classify.kernels as kernels

        monkeypatch.setattr(kernels, "_np", None)
        matcher = _toy_matcher()
        assert build_batch_kernel(matcher) is None
        assert matcher.batch_kernel() is None
        packets = PacketSampler(matcher.schema, seed=7).uniform_many(64)
        assert matcher.classify_batch(packets) == [
            matcher.classify(p) for p in packets
        ]
