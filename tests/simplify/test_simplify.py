"""Tests for the simplifier (:mod:`repro.simplify`).

The contract under test is the tentpole guarantee: for any imported
policy, ``import -> simplify -> export -> re-import`` preserves the
semantic fingerprint byte-for-byte, and the rule count never grows —
shrinking strictly on redundancy-seeded fixtures.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fdd.canonical import semantic_fingerprint
from repro.fields import standard_schema
from repro.guard import Budget, GuardContext
from repro.policy import ACCEPT, DISCARD, Firewall, Rule, dumps
from repro.policy.frontends import dialect_names, emit_policy, parse_policy
from repro.simplify import SimplifyResult, simplify_firewall, simplify_text
from repro.synth import SyntheticFirewallGenerator

DATA = Path(__file__).resolve().parent.parent / "data" / "frontends"
SCHEMA = standard_schema()

GOLDEN = {
    "iptables": DATA / "golden.iptables",
    "nftables": DATA / "golden.nft",
    "cisco": DATA / "golden.cisco",
    "native": DATA / "golden.native",
}


def synth(seed: int, rules: int = 14) -> Firewall:
    return SyntheticFirewallGenerator(seed=seed).generate(rules, name=f"s{seed}")


class TestSimplifyFirewall:
    @pytest.mark.parametrize("seed", [1, 5, 9, 23, 47])
    def test_corpus_fingerprint_preserved_and_never_grows(self, seed):
        fw = synth(seed)
        result = simplify_firewall(fw)
        assert result.fingerprint == semantic_fingerprint(fw)
        assert result.rules_after <= result.rules_before == len(fw.rules)
        assert semantic_fingerprint(result.firewall) == result.fingerprint

    def test_redundancy_seeded_policy_strictly_shrinks(self):
        fw = Firewall(
            SCHEMA,
            [
                Rule.build(SCHEMA, ACCEPT, dst_port=(0, 1023)),
                Rule.build(SCHEMA, ACCEPT, dst_port=(22, 22)),  # dead
                Rule.build(SCHEMA, ACCEPT, dst_port=(80, 80)),  # dead
                Rule.build(SCHEMA, DISCARD),
            ],
        )
        result = simplify_firewall(fw)
        assert result.reduced
        assert result.removed_dead == 2
        assert result.rules_after == 2

    def test_slim_strategy_preserves_provenance(self):
        fw = Firewall(
            SCHEMA,
            [
                Rule.build(SCHEMA, ACCEPT, dst_port=(0, 1023), comment="keep")
                .with_source_line(7),
                Rule.build(SCHEMA, ACCEPT, dst_port=(80, 80)).with_source_line(8),
                Rule.build(SCHEMA, DISCARD, comment="deny").with_source_line(9),
            ],
        )
        result = simplify_firewall(fw)
        if result.strategy == "slim":
            kept = {rule.source_line for rule in result.firewall.rules}
            assert kept <= {7, 8, 9}
            assert result.firewall.rules[0].comment == "keep"

    def test_summary_shape(self):
        result = simplify_firewall(synth(3))
        summary = result.summary()
        assert set(summary) == {
            "rules_before",
            "rules_after",
            "removed_dead",
            "removed_redundant",
            "strategy",
            "fingerprint",
        }
        assert isinstance(result, SimplifyResult)

    def test_respects_guard_budget(self):
        from repro.exceptions import BudgetExceededError

        with pytest.raises(BudgetExceededError):
            simplify_firewall(
                synth(11, rules=18), guard=GuardContext(Budget(max_nodes=3))
            )


class TestGoldenSimplification:
    @pytest.mark.parametrize("dialect", sorted(GOLDEN))
    def test_golden_strictly_shrinks_with_equal_fingerprint(self, dialect):
        text = GOLDEN[dialect].read_text()
        fw = parse_policy(text, dialect).to_firewall()
        emitted, result = simplify_text(
            text, from_dialect=dialect, to_dialect=dialect
        )
        assert result.reduced, f"{dialect} golden did not shrink"
        back = parse_policy(emitted, dialect).to_firewall()
        assert semantic_fingerprint(back) == semantic_fingerprint(fw)


class TestRoundTripMatrix:
    """Satellite: import -> simplify -> export -> re-import preserves the
    semantic fingerprint for every dialect pair."""

    @pytest.mark.parametrize("seed", [2, 13, 31])
    @pytest.mark.parametrize("to_dialect", sorted(dialect_names()))
    def test_synth_corpus_pairwise(self, seed, to_dialect):
        fw = synth(seed, rules=10)
        source = dumps(fw, schema_key="standard")
        emitted, result = simplify_text(
            source, from_dialect="native", to_dialect=to_dialect
        )
        back = parse_policy(emitted, to_dialect).to_firewall()
        assert semantic_fingerprint(back) == result.fingerprint
        assert result.fingerprint == semantic_fingerprint(fw)

    @pytest.mark.parametrize("from_dialect", sorted(GOLDEN))
    @pytest.mark.parametrize("to_dialect", sorted(dialect_names()))
    def test_golden_pairwise(self, from_dialect, to_dialect):
        text = GOLDEN[from_dialect].read_text()
        fw = parse_policy(text, from_dialect).to_firewall()
        if to_dialect == "cisco" and fw.schema != SCHEMA:
            pytest.skip("Cisco ACLs cannot express connection state")
        emitted, result = simplify_text(
            text, from_dialect=from_dialect, to_dialect=to_dialect
        )
        assert result.rules_after <= result.rules_before
        back = parse_policy(emitted, to_dialect).to_firewall()
        assert semantic_fingerprint(back) == result.fingerprint


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rules=st.integers(min_value=1, max_value=12),
    to_dialect=st.sampled_from(sorted(dialect_names())),
)
def test_property_round_trip_preserves_fingerprint(seed, rules, to_dialect):
    fw = SyntheticFirewallGenerator(seed=seed).generate(rules, name="prop")
    source = dumps(fw, schema_key="standard")
    emitted, result = simplify_text(
        source, from_dialect="native", to_dialect=to_dialect
    )
    back = parse_policy(emitted, to_dialect).to_firewall()
    assert result.rules_after <= len(fw.rules)
    assert semantic_fingerprint(back) == semantic_fingerprint(fw)
