"""Tests for :mod:`repro.simplify`."""
