"""Cross-engine agreement: the store engine vs the paper-literal pipeline.

Every store-backed algorithm must agree exactly with its mutable-tree
reference implementation — the reference *is* the paper's pseudocode, so
agreement is the correctness argument for the fast engine.  Two layers:

* Hypothesis properties over random firewalls (small schemas, brute-force
  checkable);
* deterministic runs over the synthetic corpus
  (:func:`repro.synth.generate_firewall_pair` + Fig. 12 perturbation),
  which produces the realistic near-duplicate pairs the fingerprint
  satellite requires.
"""

from hypothesis import given, settings

from repro.fields import toy_schema
from repro.policy import Firewall
from repro.analysis.effective import effective_rules
from repro.analysis.equivalence import disputed_packet_count, equivalent
from repro.analysis.impact import analyze_change
from repro.fdd.canonical import canonical_fdd, semantic_fingerprint
from repro.fdd.fast import compare_fast
from repro.fdd.generation import generate_firewall
from repro.fdd.marking import mark_fdd, node_load
from repro.synth import generate_firewall_pair, perturb

from tests.conftest import firewalls

SCHEMA = toy_schema(19, 9)


# ----------------------------------------------------------------------
# The fingerprint satellite: fingerprint equality <=> no discrepancies
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(firewalls(SCHEMA, max_rules=5), firewalls(SCHEMA, max_rules=5))
def test_fingerprint_equality_iff_no_discrepancies(fw_a, fw_b):
    same_print = semantic_fingerprint(fw_a) == semantic_fingerprint(fw_b)
    clean = not compare_fast(fw_a, fw_b).has_discrepancy()
    assert same_print == clean


@settings(max_examples=40, deadline=None)
@given(firewalls(SCHEMA, max_rules=5, include_log=True))
def test_fingerprint_engines_agree(fw):
    assert semantic_fingerprint(fw, engine="fast") == semantic_fingerprint(
        fw, engine="reference"
    )


def test_fingerprint_on_perturbed_near_duplicates():
    base, _ = generate_firewall_pair(60, seed=21)
    for seed in range(5):
        near, record = perturb(base, 0.1, seed=seed, y=0.5)
        same_print = semantic_fingerprint(base) == semantic_fingerprint(near)
        diff = compare_fast(base, near)
        assert same_print == (not diff.has_discrepancy())
        # Perturbation that flipped or deleted nothing must fingerprint equal.
        if not record.flipped and not record.deleted:
            assert same_print


# ----------------------------------------------------------------------
# Store-backed algorithms vs the reference pipeline (synth corpus)
# ----------------------------------------------------------------------


def _corpus() -> list[tuple[Firewall, Firewall]]:
    pairs = [generate_firewall_pair(40, seed=s) for s in (3, 7)]
    base, _ = generate_firewall_pair(50, seed=11)
    near, _ = perturb(base, 0.2, seed=4, y=0.5)
    pairs.append((base, near))
    return pairs


def test_canonical_engines_produce_identical_diagrams():
    for fw_a, fw_b in _corpus():
        for fw in (fw_a, fw_b):
            fast = canonical_fdd(fw, engine="fast")
            ref = canonical_fdd(fw, engine="reference")
            fast.validate()
            assert fast.stats() == ref.stats()
            assert semantic_fingerprint(fw) == semantic_fingerprint(
                fw, engine="reference"
            )


def test_equivalence_engines_agree_on_corpus():
    for fw_a, fw_b in _corpus():
        assert equivalent(fw_a, fw_b) == equivalent(fw_a, fw_b, engine="reference")
        assert disputed_packet_count(fw_a, fw_b) == disputed_packet_count(
            fw_a, fw_b, engine="reference"
        )
        assert equivalent(fw_a, fw_a)


def test_effective_engines_agree_on_corpus():
    for fw_a, fw_b in _corpus():
        for fw in (fw_a, fw_b):
            fast = effective_rules(fw)
            ref = effective_rules(fw, engine="reference")
            assert fast.rules == ref.rules
            assert fast.decisions_taken == ref.decisions_taken


def test_impact_engines_agree_on_corpus():
    for fw_a, fw_b in _corpus():
        fast = analyze_change(fw_a, fw_b)
        ref = analyze_change(fw_a, fw_b, engine="reference")
        assert fast.affected_packets() == ref.affected_packets()
        # Cell decompositions may differ between engines; the per-kind
        # packet volumes are the semantic quantity and must match exactly.
        fast_kinds = {
            kind: sum(d.size() for d in discs)
            for kind, discs in fast.by_kind().items()
        }
        ref_kinds = {
            kind: sum(d.size() for d in discs)
            for kind, discs in ref.by_kind().items()
        }
        assert fast_kinds == ref_kinds


def test_impact_jobs_path_agrees_with_serial():
    fw_a, fw_b = generate_firewall_pair(40, seed=3)
    serial = analyze_change(fw_a, fw_b)
    sharded = analyze_change(fw_a, fw_b, jobs=1)
    assert sharded.affected_packets() == serial.affected_packets()


def test_marking_and_generation_round_trip_on_store_diagrams():
    for fw_a, _ in _corpus():
        canon = canonical_fdd(fw_a)
        marking = mark_fdd(canon)
        assert node_load(canon.root, marking) >= 1
        regenerated = generate_firewall(canon, compact=False)
        assert equivalent(fw_a, regenerated)


@settings(max_examples=40, deadline=None)
@given(firewalls(SCHEMA, max_rules=4, include_log=True))
def test_effective_engines_agree_property(fw):
    fast = effective_rules(fw)
    ref = effective_rules(fw, engine="reference")
    assert fast.rules == ref.rules
    assert fast.decisions_taken == ref.decisions_taken


@settings(max_examples=40, deadline=None)
@given(firewalls(SCHEMA, max_rules=4), firewalls(SCHEMA, max_rules=4))
def test_equivalence_engines_agree_property(fw_a, fw_b):
    assert equivalent(fw_a, fw_b) == equivalent(fw_a, fw_b, engine="reference")
