"""Cross-cutting, metamorphic properties of the whole pipeline.

These go beyond per-module checks: relations that must hold *between*
operations (symmetry, triangle containment, perturbation ground truth),
on multi-decision policies and three-field schemas, plus sampled checks
on the real five-field schema where enumeration is impossible.
"""

from hypothesis import given, settings

from repro.analysis import aggregate_discrepancies, analyze_change, equivalent
from repro.fdd import compare_firewalls, construct_fdd, generate_firewall, reduce_fdd
from repro.fdd.fast import compare_fast
from repro.fields import PacketSampler, enumerate_universe, toy_schema
from repro.synth import SyntheticFirewallGenerator, flip_decision, perturb

from tests.conftest import covered_packets, firewalls

SCHEMA = toy_schema(9, 9)
SCHEMA3 = toy_schema(5, 5, 5)


class TestSymmetryAndComposition:
    @given(firewalls(SCHEMA, max_rules=4), firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=25, deadline=None)
    def test_comparison_is_symmetric(self, fw_a, fw_b):
        forward = compare_firewalls(fw_a, fw_b)
        backward = compare_firewalls(fw_b, fw_a)
        assert covered_packets(forward) == covered_packets(backward)
        # Decisions swap sides.
        forward_pairs = {
            (tuple(d.sets), d.decision_a, d.decision_b) for d in forward
        }
        backward_pairs = {
            (tuple(d.sets), d.decision_b, d.decision_a) for d in backward
        }
        assert forward_pairs == backward_pairs

    @given(
        firewalls(SCHEMA, max_rules=3),
        firewalls(SCHEMA, max_rules=3),
        firewalls(SCHEMA, max_rules=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_triangle_containment(self, fa, fb, fc):
        """Packets where a and c disagree must show up in a-vs-b or b-vs-c."""
        ac = covered_packets(compare_firewalls(fa, fc))
        ab = covered_packets(compare_firewalls(fa, fb))
        bc = covered_packets(compare_firewalls(fb, fc))
        assert ac <= (ab | bc)

    @given(firewalls(SCHEMA, max_rules=4), firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=20, deadline=None)
    def test_impact_noop_iff_equivalent(self, fw_a, fw_b):
        report = analyze_change(fw_a, fw_b)
        assert report.is_noop == equivalent(fw_a, fw_b)

    @given(firewalls(SCHEMA, max_rules=4), firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=20, deadline=None)
    def test_aggregation_idempotent(self, fw_a, fw_b):
        once = aggregate_discrepancies(compare_firewalls(fw_a, fw_b))
        twice = aggregate_discrepancies(once)
        assert [(d.sets, d.decision_a, d.decision_b) for d in once] == [
            (d.sets, d.decision_a, d.decision_b) for d in twice
        ]


class TestPerturbationGroundTruth:
    @given(firewalls(SCHEMA3, max_rules=4, include_log=True))
    @settings(max_examples=20, deadline=None)
    def test_single_flip_discrepancies_are_the_effective_region(self, firewall):
        """Flipping rule i's decision disputes exactly the packets whose
        first match is rule i (its effective region)."""
        index = len(firewall) // 2
        flipped = firewall.replace(
            index,
            firewall[index].with_decision(flip_decision(firewall[index].decision)),
        )
        disputed = covered_packets(compare_firewalls(firewall, flipped))
        effective = {
            tuple(p)
            for p in enumerate_universe(SCHEMA3)
            if firewall.first_match_index(p) == index
        }
        # Equal unless the flip landed on a decision already equal (e.g.
        # accept -> accept): then both sides are empty or identical.
        if firewall[index].decision == flipped[index].decision:
            assert not disputed
        else:
            assert disputed == effective

    @given(firewalls(SCHEMA3, max_rules=4))
    @settings(max_examples=15, deadline=None)
    def test_deleting_shadowed_rule_is_noop(self, firewall):
        from repro.analysis import find_upward_redundant

        for index in find_upward_redundant(firewall):
            slimmer = firewall.remove(index)
            assert equivalent(firewall, slimmer)
            break  # one is enough per example


class TestRegenerationProperties:
    @given(firewalls(SCHEMA3, max_rules=4, include_log=True))
    @settings(max_examples=15, deadline=None)
    def test_reduce_generate_roundtrip(self, firewall):
        regenerated = generate_firewall(
            reduce_fdd(construct_fdd(firewall)), compact=False
        )
        assert equivalent(regenerated, firewall)

    @given(firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=15, deadline=None)
    def test_generated_firewall_never_larger_than_paths(self, firewall):
        fdd = reduce_fdd(construct_fdd(firewall))
        regenerated = generate_firewall(fdd, reduce=False, compact=False)
        assert len(regenerated) <= max(1, fdd.count_paths())


class TestRealSchemaSampled:
    """The 2^104 universe can't be enumerated; sample instead."""

    def test_engines_agree_on_sampled_packets(self):
        fw = SyntheticFirewallGenerator(seed=51).generate(60)
        other, _ = perturb(fw, 0.3, seed=52)
        diff = compare_fast(fw, other)
        sampler = PacketSampler(fw.schema, seed=53)
        from repro.synth import BoundaryTraceGenerator

        boundary = BoundaryTraceGenerator(fw, seed=54)
        for packet in sampler.uniform_many(300) + boundary.packets(300):
            dec_a, dec_b = diff.evaluate(packet)
            assert dec_a == fw(packet)
            assert dec_b == other(packet)

    def test_discrepancy_regions_probe_correctly(self):
        fw = SyntheticFirewallGenerator(seed=55).generate(40)
        other, _ = perturb(fw, 0.25, seed=56)
        discs = compare_firewalls(fw, other)
        sampler = PacketSampler(fw.schema, seed=57)
        for disc in discs[:50]:
            packet = sampler.from_region(disc.sets)
            assert fw(packet) == disc.decision_a
            assert other(packet) == disc.decision_b

    def test_disputed_count_matches_region_sizes(self):
        fw = SyntheticFirewallGenerator(seed=58).generate(40)
        other, _ = perturb(fw, 0.25, seed=59)
        discs = compare_firewalls(fw, other)
        fast = compare_fast(fw, other)
        assert sum(d.size() for d in discs) == fast.disputed_packet_count()
