"""Properties of the guarded execution layer.

Two invariants, checked over random firewalls:

1. **Transparency** — running any pipeline stage under a guard whose
   budget is never exhausted produces *byte-identical* results to the
   unguarded run.  The guard may only observe, never steer.
2. **Clean unwinding** — a fault injected at any guarded site leaves the
   inputs untouched: their fingerprints match the pre-fault values and a
   subsequent unguarded run still produces the baseline output.
"""

from hypothesis import given, settings
from hypothesis import strategies as st


from repro.analysis import compare_with_fallback
from repro.exceptions import BudgetExceededError, FaultInjectedError
from repro.fdd import (
    compare_firewalls,
    construct_fdd,
    generate_firewall,
    make_semi_isomorphic,
)
from repro.fdd.canonical import semantic_fingerprint
from repro.fdd.fast import compare_fast
from repro.fields import toy_schema
from repro.guard import Budget, FaultInjector, GuardContext
from repro.policy import dumps

from tests.conftest import firewalls

SCHEMA = toy_schema(9, 9)

GENEROUS = Budget(max_nodes=10_000_000, max_splits=10_000_000, deadline_s=600.0)

FAULT_SITES = [
    "construction.rule",
    "shaping.start",
    "shaping.pair",
    "comparison.visit",
]


class TestGuardTransparency:
    @given(firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=25, deadline=None)
    def test_guarded_construction_is_byte_identical(self, fw):
        plain = construct_fdd(fw)
        guarded = construct_fdd(fw, guard=GuardContext(GENEROUS))
        assert semantic_fingerprint(plain) == semantic_fingerprint(guarded)
        # Stronger than semantic equality: the regenerated rule text of
        # both diagrams matches byte for byte.
        assert dumps(generate_firewall(plain)) == dumps(generate_firewall(guarded))

    @given(firewalls(SCHEMA, max_rules=3), firewalls(SCHEMA, max_rules=3))
    @settings(max_examples=25, deadline=None)
    def test_guarded_comparison_is_byte_identical(self, fw_a, fw_b):
        plain = compare_firewalls(fw_a, fw_b)
        guarded = compare_firewalls(fw_a, fw_b, guard=GuardContext(GENEROUS))
        assert plain == guarded

    @given(firewalls(SCHEMA, max_rules=3), firewalls(SCHEMA, max_rules=3))
    @settings(max_examples=25, deadline=None)
    def test_guarded_shaping_is_byte_identical(self, fw_a, fw_b):
        plain = make_semi_isomorphic(construct_fdd(fw_a), construct_fdd(fw_b))
        guarded = make_semi_isomorphic(
            construct_fdd(fw_a),
            construct_fdd(fw_b),
            guard=GuardContext(GENEROUS),
        )
        for p, g in zip(plain, guarded):
            assert semantic_fingerprint(p) == semantic_fingerprint(g)

    @given(firewalls(SCHEMA, max_rules=3), firewalls(SCHEMA, max_rules=3))
    @settings(max_examples=25, deadline=None)
    def test_guarded_fast_engine_is_byte_identical(self, fw_a, fw_b):
        plain = compare_fast(fw_a, fw_b).discrepancies()
        guarded = compare_fast(
            fw_a, fw_b, guard=GuardContext(GENEROUS)
        ).discrepancies()
        assert plain == guarded

    @given(firewalls(SCHEMA, max_rules=3), firewalls(SCHEMA, max_rules=3))
    @settings(max_examples=25, deadline=None)
    def test_fallback_within_budget_equals_exact(self, fw_a, fw_b):
        report = compare_with_fallback(fw_a, fw_b, budget=GENEROUS)
        assert not report.approximate
        assert list(report.discrepancies) == compare_firewalls(fw_a, fw_b)


class TestCleanUnwinding:
    @given(
        firewalls(SCHEMA, max_rules=3),
        firewalls(SCHEMA, max_rules=3),
        st.sampled_from(FAULT_SITES),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_injected_fault_leaves_inputs_intact(self, fw_a, fw_b, site, after):
        before_a = semantic_fingerprint(fw_a)
        before_b = semantic_fingerprint(fw_b)
        baseline = compare_firewalls(fw_a, fw_b)

        injector = FaultInjector()
        injector.arm(site, after=after)
        try:
            compare_firewalls(fw_a, fw_b, guard=GuardContext(fault=injector))
        except FaultInjectedError:
            pass  # small runs may finish before the countdown expires

        assert semantic_fingerprint(fw_a) == before_a
        assert semantic_fingerprint(fw_b) == before_b
        assert compare_firewalls(fw_a, fw_b) == baseline

    @given(
        firewalls(SCHEMA, max_rules=3),
        firewalls(SCHEMA, max_rules=3),
        st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_budget_trip_leaves_inputs_intact(self, fw_a, fw_b, max_nodes):
        """Whatever node budget the run trips on, it unwinds cleanly."""
        before_a = semantic_fingerprint(fw_a)
        baseline = compare_firewalls(fw_a, fw_b)
        guard = GuardContext(Budget(max_nodes=max_nodes))
        try:
            result = compare_firewalls(fw_a, fw_b, guard=guard)
        except BudgetExceededError as exc:
            assert exc.resource == "fdd-nodes"
            assert exc.spent == max_nodes + 1
            assert guard.exhausted == "fdd-nodes"
        else:
            # Enough budget: the guarded result must equal the baseline.
            assert result == baseline
        assert semantic_fingerprint(fw_a) == before_a
        assert compare_firewalls(fw_a, fw_b) == baseline
