"""Differential fuzz: the compiled classifier vs both interpreted engines.

The standing corpus drives >= 100,000 packets through three independent
implementations of the same semantics — the flat-array matcher (batch
path, kernel or scalar), ``FDD.evaluate`` on the reduced diagram, and
first-match ``Firewall.evaluate`` — and requires exact agreement on
every packet.  Half of each firewall's packets are uniform draws; the
other half are boundary packets (rule-interval endpoints +/- 1), where
off-by-one compilation bugs actually live.
"""

from repro.classify import compile_fdd
from repro.fdd.fast import construct_fdd_fast
from repro.fields import PacketSampler
from repro.synth import SyntheticFirewallGenerator

#: (rules, packets) per corpus entry; the packet counts sum past the
#: 100k floor asserted below so the suite can't silently shrink.
CORPUS = ((20, 40_000), (60, 35_000), (150, 30_000))


def _boundary_pools(firewall):
    """Per-field pools of rule-interval endpoints and their neighbours."""
    pools = [set() for _ in firewall.schema]
    for rule in firewall:
        for index, values in enumerate(rule.predicate.sets):
            for interval in values.intervals:
                pools[index].update(
                    (interval.lo - 1, interval.lo, interval.hi, interval.hi + 1)
                )
    return [sorted(pool) for pool in pools]


def test_compiled_vs_fdd_vs_firewall_on_100k_packets():
    total = 0
    for seed, (rules, num_packets) in enumerate(CORPUS, start=100):
        firewall = SyntheticFirewallGenerator(seed=seed).generate(rules)
        fdd = construct_fdd_fast(firewall)
        matcher = compile_fdd(fdd)
        sampler = PacketSampler(firewall.schema, seed=seed)
        pools = _boundary_pools(firewall)
        packets = sampler.uniform_many(num_packets // 2) + [
            sampler.near_boundaries(pools) for _ in range(num_packets // 2)
        ]
        compiled = matcher.classify_batch(packets)
        for packet, decision in zip(packets, compiled):
            assert decision == fdd.evaluate(packet), (
                f"compiled vs FDD mismatch at {tuple(packet)}"
                f" (rules={rules}, seed={seed})"
            )
            assert decision == firewall.evaluate(packet), (
                f"compiled vs firewall mismatch at {tuple(packet)}"
                f" (rules={rules}, seed={seed})"
            )
        total += len(packets)
    assert total >= 100_000
