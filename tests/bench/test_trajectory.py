"""Tests for the JSON perf-trajectory format and regression comparator."""

from __future__ import annotations

import json

import pytest

from repro.bench.trajectory import (
    compare_trajectories,
    load_trajectory,
    machine_fingerprint,
    trajectory_payload,
    write_trajectory,
)


def payload(rows):
    return trajectory_payload("unit", rows)


class TestPayload:
    def test_round_trip_through_disk(self, tmp_path):
        path = write_trajectory(
            tmp_path / "t.json", "unit", [{"key": "a", "total_ms": 1.5}]
        )
        doc = load_trajectory(path)
        assert doc["benchmark"] == "unit"
        assert doc["rows"] == [{"key": "a", "total_ms": 1.5}]
        assert doc["machine"] == machine_fingerprint()
        # stable formatting: sorted keys, trailing newline
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == doc

    def test_rows_need_unique_keys(self):
        with pytest.raises(ValueError, match="duplicate"):
            trajectory_payload("unit", [{"key": "a"}, {"key": "a"}])
        with pytest.raises(ValueError, match="'key'"):
            trajectory_payload("unit", [{"total_ms": 1.0}])

    def test_load_rejects_non_trajectory_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="missing"):
            load_trajectory(path)


class TestCompare:
    def test_within_threshold_is_clean(self):
        base = payload([{"key": "a", "total_ms": 100.0, "shards": 4}])
        cur = payload([{"key": "a", "total_ms": 120.0, "shards": 5}])
        assert compare_trajectories(base, cur, threshold=0.25) == []

    def test_slower_timing_is_a_regression(self):
        base = payload([{"key": "a", "total_ms": 100.0}])
        cur = payload([{"key": "a", "total_ms": 130.0}])
        found = compare_trajectories(base, cur, threshold=0.25)
        assert [(r.row_key, r.metric, r.kind) for r in found] == [
            ("a", "total_ms", "slower")
        ]
        assert found[0].ratio == pytest.approx(1.3)

    def test_counters_are_not_timings(self):
        base = payload([{"key": "a", "shards": 4, "disputed_packets": 10}])
        cur = payload([{"key": "a", "shards": 400, "disputed_packets": 99}])
        assert compare_trajectories(base, cur) == []

    def test_exact_fields_must_match(self):
        base = payload([{"key": "a", "disputed_packets": 10}])
        cur = payload([{"key": "a", "disputed_packets": 11}])
        found = compare_trajectories(base, cur, exact=("disputed_packets",))
        assert [r.kind for r in found] == ["drift"]

    def test_missing_row_is_a_regression_but_new_row_is_not(self):
        base = payload([{"key": "a", "total_ms": 1.0}])
        cur = payload([{"key": "b", "total_ms": 1.0}])
        found = compare_trajectories(base, cur)
        assert [r.kind for r in found] == ["missing-row"]
        assert compare_trajectories(cur, cur) == []

    def test_sub_noise_floor_timings_are_skipped(self):
        base = payload([{"key": "a", "total_ms": 0.2}])
        cur = payload([{"key": "a", "total_ms": 0.9}])  # 4.5x but micro-noise
        assert compare_trajectories(base, cur, min_ms=1.0) == []

    def test_us_and_s_suffixes_scale_to_ms(self):
        base = payload([{"key": "a", "per_op_us": 50.0, "phase_s": 2.0}])
        cur = payload([{"key": "a", "per_op_us": 900.0, "phase_s": 3.0}])
        found = compare_trajectories(base, cur, min_ms=1.0)
        # per_op_us: both sides < 1 ms -> skipped; phase_s: 1.5x -> flagged
        assert [(r.metric, r.kind) for r in found] == [("phase_s", "slower")]


class TestCheckRegressCli:
    def test_exit_codes(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        script = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regress.py"
        base = write_trajectory(tmp_path / "base.json", "unit", [{"key": "a", "total_ms": 10.0}])
        same = write_trajectory(tmp_path / "same.json", "unit", [{"key": "a", "total_ms": 10.0}])
        slow = write_trajectory(tmp_path / "slow.json", "unit", [{"key": "a", "total_ms": 20.0}])

        ok = subprocess.run(
            [sys.executable, str(script), str(base), str(same)],
            capture_output=True,
            text=True,
        )
        assert ok.returncode == 0, ok.stderr
        assert "OK" in ok.stdout

        bad = subprocess.run(
            [sys.executable, str(script), str(base), str(slow)],
            capture_output=True,
            text=True,
        )
        assert bad.returncode == 1
        assert "regression" in bad.stdout

        missing = subprocess.run(
            [sys.executable, str(script), str(base), str(tmp_path / "nope.json")],
            capture_output=True,
            text=True,
        )
        assert missing.returncode == 2
