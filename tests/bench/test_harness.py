"""Tests for the benchmark harness helpers (small parameters only)."""

import pytest

from repro.bench import (
    banner,
    effectiveness_experiment,
    fig12_experiment,
    fig13_experiment,
    render_series,
    render_table,
    timed_comparison,
    timed_fast_comparison,
)
from repro.synth import SyntheticFirewallGenerator


@pytest.fixture(scope="module")
def firewall():
    return SyntheticFirewallGenerator(seed=6).generate(20)


class TestTiming:
    def test_timed_comparison_fields(self, firewall):
        from repro.synth import perturb

        other, _ = perturb(firewall, 0.2, seed=1)
        discs, timing = timed_comparison(firewall, other)
        assert timing.rules_a == 20
        assert timing.total_ms >= timing.construction_ms
        assert timing.discrepancies == len(discs)
        assert timing.shaped_paths >= max(timing.paths_a, timing.paths_b)

    def test_timed_fast_comparison_fields(self, firewall):
        from repro.synth import perturb

        other, _ = perturb(firewall, 0.2, seed=1)
        fast = timed_fast_comparison(firewall, other)
        assert fast.total_ms > 0
        assert fast.difference_nodes > 0

    def test_engines_agree(self, firewall):
        from repro.synth import perturb

        other, _ = perturb(firewall, 0.3, seed=2)
        discs, _ = timed_comparison(firewall, other)
        fast = timed_fast_comparison(firewall, other)
        assert sum(d.size() for d in discs) == fast.disputed_packets


class TestExperiments:
    def test_fig12_rows(self, firewall):
        rows = fig12_experiment(firewall, xs=(10, 30), trials=1, engine="fast")
        assert [row.x_percent for row in rows] == [10, 30]
        assert all(row.trials == 1 for row in rows)
        assert all(row.total_ms > 0 for row in rows)

    def test_fig12_reference_engine(self, firewall):
        rows = fig12_experiment(firewall, xs=(20,), trials=1, engine="reference")
        assert rows[0].shaping_ms >= 0

    def test_fig13_rows(self):
        rows = fig13_experiment(sizes=(10, 20), seed=1, engine="fast")
        assert [row.rules_per_firewall for row in rows] == [10, 20]
        assert all(row.engine == "fast" for row in rows)

    def test_fig13_reference(self):
        rows = fig13_experiment(sizes=(10,), seed=1, engine="reference")
        assert rows[0].engine == "reference"
        assert rows[0].difference_paths > 0

    def test_effectiveness_small(self):
        result = effectiveness_experiment(
            seed=5, ordering_errors=2, missing_rules=1, redesign_errors=1
        )
        assert result.all_errors_surfaced
        assert result.discrepancies_found > 0
        assert (
            result.original_wrong + result.redesign_wrong + result.both_wrong
            == result.discrepancies_found
        )


class TestReporting:
    def test_render_table_alignment(self):
        table = render_table(["a", "long-header"], [[1, 2.5], [333, 4.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_render_series(self):
        text = render_series("label", [1, 2], [5.0, 10.0], width=10)
        assert "label" in text
        assert text.splitlines()[2].count("#") == 10

    def test_render_series_all_zero(self):
        text = render_series("z", [1], [0.0])
        assert "#" not in text

    def test_banner(self):
        text = banner("title", "detail one")
        assert "title" in text and "detail one" in text
