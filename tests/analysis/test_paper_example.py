"""End-to-end test of the paper's running example (Tables 1-7).

This is the reproduction's anchor: the two teams' firewalls from
Tables 1/2 must yield the Table 3 discrepancies, the Table 4 resolution
must produce (via both Section 6 methods, and via Teams A and B as
patching bases) firewalls equivalent to the agreed reference policy.
"""

from repro.analysis import (
    aggregate_discrepancies,
    equivalent,
    resolve_by_corrected_fdd,
    resolve_by_patching,
    resolve_with,
)
from repro.fdd import compare_firewalls
from repro.policy import ACCEPT, DISCARD
from repro.synth import (
    paper_resolution_chooser,
    resolved_reference_firewall,
    team_a_firewall,
    team_b_firewall,
)
from repro.synth.workloads import MAIL_SERVER, MALICIOUS_LO


class TestTables1And2:
    def test_team_a_motivating_packets(self):
        fw = team_a_firewall()
        # Team A accepts e-mail to the mail server even from the
        # malicious domain (rule 1 precedes rule 2).
        assert fw((0, MALICIOUS_LO, MAIL_SERVER, 25, 0)) == ACCEPT
        # Non-mail from the malicious domain is blocked.
        assert fw((0, MALICIOUS_LO, 1, 80, 0)) == DISCARD
        # Everything else passes.
        assert fw((0, 1, 2, 80, 1)) == ACCEPT
        assert fw((1, MALICIOUS_LO, MAIL_SERVER, 25, 0)) == ACCEPT

    def test_team_b_motivating_packets(self):
        fw = team_b_firewall()
        # Team B blocks the malicious domain outright...
        assert fw((0, MALICIOUS_LO, MAIL_SERVER, 25, 0)) == DISCARD
        # ...accepts only TCP e-mail to the mail server...
        assert fw((0, 1, MAIL_SERVER, 25, 0)) == ACCEPT
        assert fw((0, 1, MAIL_SERVER, 25, 1)) == DISCARD  # UDP e-mail
        assert fw((0, 1, MAIL_SERVER, 80, 0)) == DISCARD  # non-e-mail
        # ...and accepts the rest.
        assert fw((0, 1, 2, 80, 0)) == ACCEPT


class TestTable3:
    def test_three_aggregated_discrepancies(self):
        raw = compare_firewalls(team_a_firewall(), team_b_firewall())
        merged = aggregate_discrepancies(raw)
        assert len(merged) == 3
        # All disagreements have A accepting what B discards.
        for disc in merged:
            assert disc.decision_a == ACCEPT and disc.decision_b == DISCARD

    def test_disputed_set_is_the_papers(self):
        """Check the three semantic questions of Section 5 one packet each."""
        fw_a, fw_b = team_a_firewall(), team_b_firewall()
        raw = compare_firewalls(fw_a, fw_b)

        def disputed(packet):
            return any(d.contains(packet) for d in raw)

        # Q1: malicious domain -> mail server e-mail.
        assert disputed((0, MALICIOUS_LO, MAIL_SERVER, 25, 0))
        # Q2: non-TCP port-25 from non-malicious host to mail server.
        assert disputed((0, 1, MAIL_SERVER, 25, 1))
        # Q3: non-25 port from non-malicious host to mail server.
        assert disputed((0, 1, MAIL_SERVER, 80, 0))
        # Agreed packets are NOT disputed.
        assert not disputed((0, 1, 2, 80, 0))       # other hosts
        assert not disputed((1, 1, MAIL_SERVER, 25, 0))  # outgoing interface
        assert not disputed((0, MALICIOUS_LO, 1, 80, 0))  # malicious non-mail

    def test_disputed_packet_count_exact(self):
        from repro.fdd.fast import compare_fast

        raw = compare_firewalls(team_a_firewall(), team_b_firewall())
        fast = compare_fast(team_a_firewall(), team_b_firewall())
        assert sum(d.size() for d in raw) == fast.disputed_packet_count()


class TestTables4Through7:
    def _resolutions(self, fw_a, fw_b):
        raw = compare_firewalls(fw_a, fw_b)
        return resolve_with(raw, paper_resolution_chooser)

    def test_method1_matches_reference(self):
        fw_a, fw_b = team_a_firewall(), team_b_firewall()
        final = resolve_by_corrected_fdd(fw_a, fw_b, self._resolutions(fw_a, fw_b))
        assert equivalent(final, resolved_reference_firewall())

    def test_method2_base_a_matches_reference(self):
        fw_a, fw_b = team_a_firewall(), team_b_firewall()
        final = resolve_by_patching(
            fw_a, self._resolutions(fw_a, fw_b), base_is="a"
        )
        assert equivalent(final, resolved_reference_firewall())

    def test_method2_base_b_matches_reference(self):
        fw_b, fw_a = team_b_firewall(), team_a_firewall()
        final = resolve_by_patching(
            fw_b, self._resolutions(fw_b, fw_a), base_is="a"
        )
        assert equivalent(final, resolved_reference_firewall())

    def test_resolved_reference_semantics(self):
        ref = resolved_reference_firewall()
        assert ref((0, MALICIOUS_LO, MAIL_SERVER, 25, 0)) == DISCARD  # Q1
        assert ref((0, 1, MAIL_SERVER, 25, 1)) == ACCEPT              # Q2
        assert ref((0, 1, MAIL_SERVER, 80, 0)) == DISCARD             # Q3
        assert ref((1, 5, 6, 7, 1)) == ACCEPT

    def test_compact_output_sizes(self):
        """Method 1's generated firewall stays compact (paper Table 5)."""
        fw_a, fw_b = team_a_firewall(), team_b_firewall()
        final = resolve_by_corrected_fdd(fw_a, fw_b, self._resolutions(fw_a, fw_b))
        assert len(final) <= 6
