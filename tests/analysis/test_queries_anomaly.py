"""Tests for the firewall-queries and anomaly-detection extensions."""

import pytest
from hypothesis import given, settings

from repro.analysis import (
    any_packet,
    decisions_in_region,
    find_anomalies,
    query,
)
from repro.analysis.anomaly import CORRELATION, GENERALIZATION, REDUNDANCY, SHADOWING
from repro.exceptions import QueryError
from repro.fdd import construct_fdd
from repro.fields import enumerate_universe, toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Predicate, Rule

from tests.conftest import firewalls, predicates

SCHEMA = toy_schema(9, 9)


def r(decision, **conjuncts):
    return Rule.build(SCHEMA, decision, **conjuncts)


FIREWALL = Firewall(
    SCHEMA,
    [
        r(DISCARD, F1="0-2"),
        r(ACCEPT, F1="3-6", F2="0-4"),
        r(DISCARD),
    ],
)


class TestQuery:
    def test_whole_universe_counts(self):
        accept = query(FIREWALL, Predicate.match_all(SCHEMA), ACCEPT)
        assert accept.packet_count() == 4 * 5

    def test_region_restriction(self):
        region = Predicate.from_fields(SCHEMA, F1="3-4")
        result = query(FIREWALL, region, ACCEPT)
        assert result.packet_count() == 2 * 5
        for sub in result.regions:
            assert sub.field_set("F1").issubset(region.field_set("F1"))

    def test_empty_result(self):
        region = Predicate.from_fields(SCHEMA, F1="0-2")
        result = query(FIREWALL, region, ACCEPT)
        assert result.is_empty()
        assert result.describe() == "(no packets)"

    def test_accepts_prebuilt_fdd(self):
        fdd = construct_fdd(FIREWALL)
        result = query(fdd, Predicate.match_all(SCHEMA), ACCEPT)
        assert result.packet_count() == 20

    def test_schema_mismatch(self):
        other = toy_schema(9, 9, 9)
        with pytest.raises(QueryError):
            query(FIREWALL, Predicate.match_all(other), ACCEPT)

    def test_any_packet_witness(self):
        witness = any_packet(FIREWALL, Predicate.match_all(SCHEMA), ACCEPT)
        assert witness is not None
        packet = tuple(v.min() for v in witness.sets)
        assert FIREWALL(packet) == ACCEPT

    def test_any_packet_none(self):
        region = Predicate.from_fields(SCHEMA, F1="0-2")
        assert any_packet(FIREWALL, region, ACCEPT) is None

    def test_decisions_in_region(self):
        counts = decisions_in_region(FIREWALL, Predicate.match_all(SCHEMA))
        assert counts[ACCEPT] == 20
        assert counts[DISCARD] == 80
        assert sum(counts.values()) == SCHEMA.universe_size()

    @given(firewalls(SCHEMA, max_rules=4), predicates(SCHEMA))
    @settings(max_examples=25, deadline=None)
    def test_query_matches_brute_force(self, firewall, region):
        result = query(firewall, region, ACCEPT)
        expected = sum(
            1
            for p in enumerate_universe(SCHEMA)
            if region.matches(p) and firewall(p) == ACCEPT
        )
        assert result.packet_count() == expected


class TestAnomalies:
    def test_shadowing(self):
        fw = Firewall(SCHEMA, [r(ACCEPT, F1="0-5"), r(DISCARD, F1="2-4"), r(DISCARD)])
        kinds = {(a.first, a.second): a.kind for a in find_anomalies(fw)}
        assert kinds[(0, 1)] == SHADOWING

    def test_redundancy(self):
        fw = Firewall(SCHEMA, [r(ACCEPT, F1="0-5"), r(ACCEPT, F1="2-4"), r(DISCARD)])
        kinds = {(a.first, a.second): a.kind for a in find_anomalies(fw)}
        assert kinds[(0, 1)] == REDUNDANCY

    def test_generalization(self):
        fw = Firewall(SCHEMA, [r(DISCARD, F1="2-4"), r(ACCEPT, F1="0-5"), r(DISCARD)])
        kinds = {(a.first, a.second): a.kind for a in find_anomalies(fw)}
        assert kinds[(0, 1)] == GENERALIZATION

    def test_correlation(self):
        fw = Firewall(
            SCHEMA,
            [r(ACCEPT, F1="0-5", F2="0-9"), r(DISCARD, F1="3-9", F2="0-9"), r(DISCARD)],
        )
        kinds = {(a.first, a.second): a.kind for a in find_anomalies(fw)}
        assert kinds[(0, 1)] == CORRELATION

    def test_disjoint_rules_clean(self):
        fw = Firewall(SCHEMA, [r(ACCEPT, F1="0-4"), r(DISCARD, F1="5-9")])
        assert find_anomalies(fw) == []

    def test_describe(self):
        fw = Firewall(SCHEMA, [r(ACCEPT, F1="0-5"), r(DISCARD, F1="2-4"), r(DISCARD)])
        anomaly = find_anomalies(fw)[0]
        text = anomaly.describe(fw)
        assert "shadowing" in text and "r1" in text and "r2" in text
