"""Tests for discrepancy records and their rendering."""

import pytest

from repro.analysis import Discrepancy, format_discrepancy_table
from repro.fields import standard_schema, toy_schema
from repro.intervals import IntervalSet
from repro.policy import ACCEPT, DISCARD

SCHEMA = toy_schema(9, 9)


def disc(f1, f2, a=ACCEPT, b=DISCARD):
    return Discrepancy(SCHEMA, (IntervalSet.of(f1), IntervalSet.of(f2)), a, b)


class TestDiscrepancy:
    def test_requires_different_decisions(self):
        with pytest.raises(AssertionError):
            disc((0, 1), (0, 1), ACCEPT, ACCEPT)

    def test_size_and_contains(self):
        d = disc((0, 3), (5, 6))
        assert d.size() == 8
        assert d.contains((2, 5))
        assert not d.contains((4, 5))

    def test_rules(self):
        d = disc((0, 3), (5, 6))
        assert d.rule_a().decision == ACCEPT
        assert d.rule_b().decision == DISCARD
        assert d.rule_a().predicate == d.predicate

    def test_describe(self):
        text = disc((0, 3), (5, 6)).describe()
        assert "a says accept" in text and "b says discard" in text

    def test_real_schema_rendering(self):
        schema = standard_schema()
        d = Discrepancy(
            schema,
            tuple(
                f.parse_value_set(v)
                for f, v in zip(
                    schema, ["224.168.0.0/16", "192.168.0.1", "any", "25", "tcp"]
                )
            ),
            ACCEPT,
            DISCARD,
        )
        text = d.describe()
        assert "224.168.0.0/16" in text and "25 (smtp)" in text


class TestTable:
    def test_empty(self):
        assert "no functional discrepancies" in format_discrepancy_table([])

    def test_columns(self):
        table = format_discrepancy_table(
            [disc((0, 3), (5, 6))], name_a="left", name_b="right", title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "left" in lines[1] and "right" in lines[1]
        assert len(lines) == 4
