"""Tests for the diverse-design workflow, including N > 2 teams (Sec. 7.3)."""

import pytest
from hypothesis import given, settings

from repro.analysis import (
    DiverseDesignSession,
    compare_many,
    cross_compare,
    equivalent,
    make_all_semi_isomorphic,
)
from repro.exceptions import SchemaError
from repro.fdd import are_semi_isomorphic, construct_fdd
from repro.fields import enumerate_universe, toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Rule

from tests.conftest import firewalls

SCHEMA = toy_schema(9, 9)


def r(decision, **conjuncts):
    return Rule.build(SCHEMA, decision, **conjuncts)


def three_teams():
    return [
        Firewall(SCHEMA, [r(DISCARD, F1="0-2"), r(ACCEPT)], name="t1"),
        Firewall(SCHEMA, [r(DISCARD, F1="0-4"), r(ACCEPT)], name="t2"),
        Firewall(SCHEMA, [r(ACCEPT)], name="t3"),
    ]


class TestCrossCompare:
    def test_all_pairs_present(self):
        results = cross_compare(three_teams())
        assert set(results) == {(0, 1), (0, 2), (1, 2)}

    def test_pairwise_contents(self):
        teams = three_teams()
        results = cross_compare(teams)
        # t1 vs t2 differ exactly on F1 in [3,4].
        packets = set()
        for disc in results[(0, 1)]:
            for v1 in disc.sets[0]:
                packets.add(v1)
        assert packets == {3, 4}


class TestMultiwayShaping:
    def test_three_way_semi_isomorphic(self):
        fdds = [construct_fdd(fw) for fw in three_teams()]
        shaped = make_all_semi_isomorphic(fdds)
        for i in range(len(shaped)):
            for j in range(i + 1, len(shaped)):
                assert are_semi_isomorphic(shaped[i], shaped[j])

    def test_semantics_preserved(self):
        teams = three_teams()
        shaped = make_all_semi_isomorphic([construct_fdd(fw) for fw in teams])
        for fw, fdd in zip(teams, shaped):
            for packet in enumerate_universe(SCHEMA):
                assert fdd.evaluate(packet) == fw(packet)

    def test_empty_list(self):
        assert make_all_semi_isomorphic([]) == []

    @given(
        firewalls(SCHEMA, max_rules=3),
        firewalls(SCHEMA, max_rules=3),
        firewalls(SCHEMA, max_rules=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_multiway_property(self, f1, f2, f3):
        shaped = make_all_semi_isomorphic(
            [construct_fdd(f) for f in (f1, f2, f3)]
        )
        assert are_semi_isomorphic(shaped[0], shaped[2])
        for fw, fdd in zip((f1, f2, f3), shaped):
            for packet in list(enumerate_universe(SCHEMA))[::11]:
                assert fdd.evaluate(packet) == fw(packet)


class TestCompareMany:
    def test_direct_comparison_exact(self):
        teams = three_teams()
        regions = compare_many(teams)
        # Rebuild the disagreement map by brute force.
        expected = {}
        for packet in enumerate_universe(SCHEMA):
            decisions = tuple(fw(packet) for fw in teams)
            if len(set(decisions)) > 1:
                expected[packet] = decisions
        covered = {}
        for region in regions:
            for v1 in region.sets[0]:
                for v2 in region.sets[1]:
                    covered[(v1, v2)] = region.decisions
        assert covered == expected

    def test_describe(self):
        regions = compare_many(three_teams())
        text = regions[0].describe(SCHEMA)
        assert "team 1" in text and "team 3" in text

    def test_needs_two(self):
        with pytest.raises(SchemaError):
            compare_many(three_teams()[:1])


class TestSession:
    def test_unanimous_detection(self):
        same = Firewall(SCHEMA, [r(ACCEPT)])
        other = Firewall(SCHEMA, [r(ACCEPT, F1="0-9"), r(ACCEPT)])
        session = DiverseDesignSession([same, other])
        assert session.unanimous()

    def test_resolve_fdd_method(self):
        teams = three_teams()
        session = DiverseDesignSession(teams[:2])
        final = session.resolve(lambda d: DISCARD)
        # All disputed packets (F1 in [3,4]) resolved to discard.
        assert final((3, 0)) == DISCARD and final((4, 9)) == DISCARD
        assert final((7, 0)) == ACCEPT

    def test_resolve_patch_method(self):
        teams = three_teams()
        session = DiverseDesignSession(teams[:2])
        final_fdd = session.resolve(lambda d: d.decision_b)
        final_patch = session.resolve(lambda d: d.decision_b, method="patch")
        assert equivalent(final_fdd, final_patch)

    def test_resolve_unknown_method(self):
        session = DiverseDesignSession(three_teams()[:2])
        from repro.exceptions import ResolutionError

        with pytest.raises(ResolutionError):
            session.resolve(lambda d: DISCARD, method="quantum")

    def test_schema_mismatch(self):
        other = toy_schema(9, 9, 9)
        with pytest.raises(SchemaError):
            DiverseDesignSession(
                [three_teams()[0], Firewall(other, [Rule.build(other, ACCEPT)])]
            )

    def test_needs_two_versions(self):
        with pytest.raises(SchemaError):
            DiverseDesignSession(three_teams()[:1])

    def test_quorum_decision(self):
        session = DiverseDesignSession(three_teams())
        regions = session.multi_discrepancies()
        for region in regions:
            winner = session.quorum_decision(region)
            counts = {d: region.decisions.count(d) for d in region.decisions}
            assert counts[winner] == max(counts.values())
