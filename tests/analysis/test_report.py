"""Tests for the Markdown audit reports."""

from repro.analysis import audit_change, audit_policy
from repro.fields import toy_schema
from repro.policy import ACCEPT, ACCEPT_LOG, DISCARD, Firewall, Rule

SCHEMA = toy_schema(9, 9)


def r(decision, comment="", **conjuncts):
    return Rule.build(SCHEMA, decision, comment, **conjuncts)


BASE = Firewall(SCHEMA, [r(DISCARD, "block low", F1="0-4"), r(ACCEPT)], name="v1")


class TestAuditChange:
    def test_noop(self):
        same = BASE.insert(0, r(DISCARD, "repeat", F1="1-2")).with_name("v2")
        text = audit_change(BASE, same)
        assert "no semantic change" in text
        assert "`v1` -> `v2`" in text
        assert "rules: 2 -> 3 (+1)" in text

    def test_newly_allowed_flagged(self):
        opened = BASE.remove(0).prepend(r(DISCARD, F1="0-2")).with_name("v2")
        text = audit_change(BASE, opened)
        assert "semantics changed" in text
        assert "⚠ **Newly allowed traffic**" in text
        assert "| newly allowed | 1 |" in text

    def test_newly_blocked_section(self):
        closed = BASE.prepend(r(DISCARD, F1="7-8")).with_name("v2")
        text = audit_change(BASE, closed)
        assert "Newly blocked traffic" in text
        assert "| newly blocked | 1 | 20 |" in text

    def test_handling_changed_counted(self):
        relogged = BASE.replace(1, r(ACCEPT_LOG)).with_name("v2")
        text = audit_change(BASE, relogged)
        assert "| handling changed | 1 |" in text

    def test_fingerprints_differ_iff_changed(self):
        closed = BASE.prepend(r(DISCARD, F1="7-8")).with_name("v2")
        text = audit_change(BASE, closed)
        lines = [ln for ln in text.splitlines() if "fingerprint" in ln]
        assert lines[0].split("`")[1] != lines[1].split("`")[1]

    def test_anomaly_delta_reported(self):
        shadowing = BASE.append(r(ACCEPT, "shadowed", F1="0-1")).with_name("v2")
        # appended after the catch-all changes nothing semantically but
        # adds anomaly flags
        text = audit_change(BASE, shadowing)
        assert "no semantic change" in text  # appended after catch-all


class TestAuditPolicy:
    def test_healthy_policy(self):
        text = audit_policy(BASE)
        assert "no unreachable rules" in text
        assert "catch-all present: yes" in text

    def test_dead_rule_flagged(self):
        sick = Firewall(
            SCHEMA,
            [r(ACCEPT, F1="0-5"), r(DISCARD, "dead", F1="2-3"), r(DISCARD)],
            name="sick",
        )
        text = audit_policy(sick)
        assert "unreachable rule(s)" in text and "r2" in text
        assert "anomaly flag" in text

    def test_with_trace_coverage(self):
        text = audit_policy(BASE, trace=[(0, 0), (9, 9)])
        assert "Trace coverage" in text
        assert "2 packets" in text

    def test_anomaly_overflow_truncated(self):
        rules = [r(ACCEPT, F1=f"{i}-{i}") for i in range(9)]
        rules.append(r(DISCARD, F1="0-8"))
        rules.append(r(DISCARD))
        noisy = Firewall(SCHEMA, rules)
        # every accept rule shadows part of the discard rule: many flags
        text = audit_policy(noisy)
        assert "anomaly" in text
