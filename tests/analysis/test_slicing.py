"""Tests for policy slicing."""

import pytest
from hypothesis import given, settings

from repro.analysis import relevant_rules, slice_firewall
from repro.exceptions import QueryError
from repro.fields import enumerate_universe, toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Predicate, Rule

from tests.conftest import firewalls, predicates

SCHEMA = toy_schema(9, 9)


def r(decision, comment="", **conjuncts):
    return Rule.build(SCHEMA, decision, comment, **conjuncts)


FIREWALL = Firewall(
    SCHEMA,
    [
        r(DISCARD, "blocklist", F1="0-2"),
        r(ACCEPT, "service", F1="3-6", F2="0-4"),
        r(ACCEPT, "other region", F1="7-9", F2="8-9"),
        r(DISCARD, "default"),
    ],
    name="sliceme",
)


class TestSliceFirewall:
    def test_agrees_inside_region(self):
        region = Predicate.from_fields(SCHEMA, F1="3-6")
        narrow = slice_firewall(FIREWALL, region)
        for packet in enumerate_universe(SCHEMA):
            if region.matches(packet):
                assert narrow(packet) == FIREWALL(packet)

    def test_outside_defaults_to_discard(self):
        region = Predicate.from_fields(SCHEMA, F1="3-6")
        narrow = slice_firewall(FIREWALL, region)
        assert narrow((0, 0)) == DISCARD

    def test_outside_decision_override(self):
        region = Predicate.from_fields(SCHEMA, F1="3-6")
        narrow = slice_firewall(FIREWALL, region, outside=ACCEPT)
        assert narrow((0, 0)) == ACCEPT

    def test_slice_is_compact(self):
        region = Predicate.from_fields(SCHEMA, F1="3-6")
        narrow = slice_firewall(FIREWALL, region)
        assert len(narrow) <= len(FIREWALL)

    def test_named(self):
        region = Predicate.from_fields(SCHEMA, F1="3-6")
        assert "sliceme" in slice_firewall(FIREWALL, region).name

    def test_schema_mismatch(self):
        with pytest.raises(QueryError):
            slice_firewall(FIREWALL, Predicate.match_all(toy_schema(9, 9, 9)))

    @given(firewalls(SCHEMA, max_rules=4), predicates(SCHEMA))
    @settings(max_examples=20, deadline=None)
    def test_slice_property(self, firewall, region):
        narrow = slice_firewall(firewall, region)
        for packet in list(enumerate_universe(SCHEMA))[::7]:
            if region.matches(packet):
                assert narrow(packet) == firewall(packet)
            else:
                assert narrow(packet) == DISCARD


class TestRelevantRules:
    def test_only_deciding_rules(self):
        region = Predicate.from_fields(SCHEMA, F1="3-6")
        assert relevant_rules(FIREWALL, region) == [1, 3]

    def test_shadowed_overlap_excluded(self):
        shadow = Firewall(
            SCHEMA,
            [
                r(ACCEPT, "covers region", F1="0-9", F2="0-9"),
                r(DISCARD, "never reached", F1="3-4"),
                r(DISCARD, "default"),
            ],
        )
        region = Predicate.from_fields(SCHEMA, F1="3-4")
        assert relevant_rules(shadow, region) == [0]

    def test_whole_universe(self):
        indices = relevant_rules(FIREWALL, Predicate.match_all(SCHEMA))
        assert indices == [0, 1, 2, 3]

    @given(firewalls(SCHEMA, max_rules=4), predicates(SCHEMA))
    @settings(max_examples=20, deadline=None)
    def test_relevance_matches_first_match(self, firewall, region):
        expected = set()
        for packet in enumerate_universe(SCHEMA):
            if region.matches(packet):
                expected.add(firewall.first_match_index(packet))
        assert set(relevant_rules(firewall, region)) == expected
