"""Tests for discrepancy resolution (Section 6, Methods 1 and 2)."""

import pytest
from hypothesis import given, settings

from repro.analysis import (
    ResolvedDiscrepancy,
    aggregate_resolutions,
    equivalent,
    prefer_team,
    resolve_by_corrected_fdd,
    resolve_by_patching,
    resolve_with,
)
from repro.exceptions import ResolutionError
from repro.fdd import compare_firewalls
from repro.fields import enumerate_universe, toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Rule

from tests.conftest import firewalls

SCHEMA = toy_schema(9, 9)


def r(decision, **conjuncts):
    return Rule.build(SCHEMA, decision, **conjuncts)


@pytest.fixture
def pair():
    fw_a = Firewall(SCHEMA, [r(ACCEPT, F1="0-5"), r(DISCARD)], name="a")
    fw_b = Firewall(SCHEMA, [r(ACCEPT, F1="3-8"), r(DISCARD)], name="b")
    return fw_a, fw_b


class TestResolveHelpers:
    def test_prefer_team(self, pair):
        fw_a, fw_b = pair
        discs = compare_firewalls(fw_a, fw_b)
        toward_a = prefer_team(discs, "a")
        assert all(
            res.decision == res.discrepancy.decision_a for res in toward_a
        )
        with pytest.raises(ResolutionError):
            prefer_team(discs, "c")

    def test_resolve_with_chooser(self, pair):
        fw_a, fw_b = pair
        discs = compare_firewalls(fw_a, fw_b)
        resolved = resolve_with(discs, lambda d: DISCARD)
        assert all(res.decision == DISCARD for res in resolved)

    def test_correcting_rule(self, pair):
        fw_a, fw_b = pair
        discs = compare_firewalls(fw_a, fw_b)
        rule = ResolvedDiscrepancy(discs[0], DISCARD).correcting_rule()
        assert rule.decision == DISCARD
        assert rule.predicate == discs[0].predicate

    def test_aggregate_resolutions_merges_same_outcome(self, pair):
        fw_a, fw_b = pair
        discs = compare_firewalls(fw_a, fw_b)
        resolved = resolve_with(discs, lambda d: DISCARD)
        merged = aggregate_resolutions(resolved)
        assert len(merged) <= len(resolved)
        assert all(res.decision == DISCARD for res in merged)

    def test_aggregate_resolutions_keeps_conflicting_fixes_apart(self):
        from repro.analysis import Discrepancy
        from repro.intervals import IntervalSet

        cells = [
            Discrepancy(SCHEMA, (IntervalSet.of((0, 4)), IntervalSet.of((0, 9))), ACCEPT, DISCARD),
            Discrepancy(SCHEMA, (IntervalSet.of((5, 9)), IntervalSet.of((0, 9))), ACCEPT, DISCARD),
        ]
        resolved = [
            ResolvedDiscrepancy(cells[0], ACCEPT),
            ResolvedDiscrepancy(cells[1], DISCARD),
        ]
        merged = aggregate_resolutions(resolved)
        assert len(merged) == 2


class TestMethod1:
    def test_prefer_a_reproduces_a(self, pair):
        fw_a, fw_b = pair
        discs = compare_firewalls(fw_a, fw_b)
        final = resolve_by_corrected_fdd(fw_a, fw_b, prefer_team(discs, "a"))
        assert equivalent(final, fw_a)

    def test_prefer_b_reproduces_b(self, pair):
        fw_a, fw_b = pair
        discs = compare_firewalls(fw_a, fw_b)
        final = resolve_by_corrected_fdd(fw_a, fw_b, prefer_team(discs, "b"))
        assert equivalent(final, fw_b)

    def test_unresolved_discrepancy_rejected(self, pair):
        fw_a, fw_b = pair
        discs = compare_firewalls(fw_a, fw_b)
        with pytest.raises(ResolutionError, match="unresolved"):
            resolve_by_corrected_fdd(fw_a, fw_b, prefer_team(discs[:1], "a"))

    def test_mixed_resolution(self, pair):
        fw_a, fw_b = pair
        discs = compare_firewalls(fw_a, fw_b)
        resolutions = resolve_with(
            discs, lambda d: ACCEPT if d.sets[0].min() < 3 else DISCARD
        )
        final = resolve_by_corrected_fdd(fw_a, fw_b, resolutions)
        for res in resolutions:
            packet = tuple(v.min() for v in res.discrepancy.sets)
            assert final(packet) == res.decision


class TestMethod2:
    def test_prefer_b_patching_a(self, pair):
        fw_a, fw_b = pair
        discs = compare_firewalls(fw_a, fw_b)
        final = resolve_by_patching(fw_a, prefer_team(discs, "b"), base_is="a")
        assert equivalent(final, fw_b)

    def test_prefer_a_patching_a_is_noop(self, pair):
        fw_a, fw_b = pair
        discs = compare_firewalls(fw_a, fw_b)
        final = resolve_by_patching(fw_a, prefer_team(discs, "a"), base_is="a")
        assert equivalent(final, fw_a)

    def test_base_is_validation(self, pair):
        fw_a, _ = pair
        with pytest.raises(ResolutionError):
            resolve_by_patching(fw_a, [], base_is="x")

    def test_no_compact_keeps_fixes(self, pair):
        fw_a, fw_b = pair
        discs = compare_firewalls(fw_a, fw_b)
        final = resolve_by_patching(
            fw_a, prefer_team(discs, "b"), base_is="a", compact=False
        )
        assert len(final) >= len(fw_a)
        assert equivalent(final, fw_b)


class TestMethodsAgree:
    @given(firewalls(SCHEMA, max_rules=3), firewalls(SCHEMA, max_rules=3))
    @settings(max_examples=15, deadline=None)
    def test_method1_equals_method2(self, fw_a, fw_b):
        """Both Section 6 methods must produce the same final semantics."""
        discs = compare_firewalls(fw_a, fw_b)
        resolutions = resolve_with(
            discs, lambda d: d.decision_b if d.sets[0].min() % 2 else d.decision_a
        )
        method1 = resolve_by_corrected_fdd(fw_a, fw_b, resolutions)
        method2 = resolve_by_patching(fw_a, resolutions, base_is="a")
        assert equivalent(method1, method2)
        # And both honour every agreed decision.
        for res in resolutions:
            packet = tuple(v.min() for v in res.discrepancy.sets)
            assert method1(packet) == res.decision
        # Outside the disputed regions both agree with both inputs.
        for packet in list(enumerate_universe(SCHEMA))[::9]:
            if fw_a(packet) == fw_b(packet):
                assert method1(packet) == fw_a(packet)
