"""Tests for rule coverage analysis."""

from repro.analysis import coverage_report, measure_coverage
from repro.fields import toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Rule

SCHEMA = toy_schema(9, 9)


def r(decision, comment="", **conjuncts):
    return Rule.build(SCHEMA, decision, comment, **conjuncts)


FIREWALL = Firewall(
    SCHEMA,
    [
        r(ACCEPT, "front", F1="0-4"),
        r(DISCARD, "shadowed", F1="2-3"),
        r(DISCARD, "back"),
    ],
    name="cov",
)


class TestMeasure:
    def test_first_match_counting(self):
        hits = measure_coverage(FIREWALL, [(0, 0), (3, 0), (9, 9)])
        assert hits == [2, 0, 1]

    def test_empty_trace(self):
        assert measure_coverage(FIREWALL, []) == [0, 0, 0]


class TestReport:
    def test_shares(self):
        report = coverage_report(FIREWALL, [(0, 0), (1, 0), (9, 9), (8, 8)])
        assert report.total_packets == 4
        assert report.rules[0].share == 0.5
        assert report.rules[2].share == 0.5

    def test_dead_rule_flagged(self):
        report = coverage_report(FIREWALL, [(0, 0)])
        assert report.rules[1].semantically_dead
        assert [c.index for c in report.dead_rules()] == [1]

    def test_unused_excludes_catchall(self):
        report = coverage_report(FIREWALL, [(0, 0)])
        unused = {c.index for c in report.unused_rules()}
        assert 1 in unused
        assert 2 not in unused  # the catch-all is not "unused"

    def test_render(self):
        report = coverage_report(FIREWALL, [(0, 0), (9, 9)])
        text = report.render()
        assert "'cov'" in text and "r1 (front)" in text
        assert "[DEAD]" in text
        assert "semantically unreachable" in text

    def test_with_boundary_traces(self):
        from repro.synth import BoundaryTraceGenerator, SyntheticFirewallGenerator

        fw = SyntheticFirewallGenerator(seed=11).generate(25)
        trace = BoundaryTraceGenerator(fw, seed=12).packets(500)
        report = coverage_report(fw, trace)
        assert report.total_packets == 500
        assert sum(c.hits for c in report.rules) == 500
