"""Tests for discrepancy aggregation (slivers -> maximal regions)."""

from hypothesis import given, settings

from repro.analysis import Discrepancy, aggregate_discrepancies
from repro.fdd import compare_firewalls
from repro.fields import toy_schema
from repro.intervals import IntervalSet
from repro.policy import ACCEPT, ACCEPT_LOG, DISCARD

from tests.conftest import covered_packets, firewalls

SCHEMA = toy_schema(9, 9)


def cell(f1, f2, a=ACCEPT, b=DISCARD):
    return Discrepancy(SCHEMA, (IntervalSet.of(f1), IntervalSet.of(f2)), a, b)


class TestAggregation:
    def test_empty(self):
        assert aggregate_discrepancies([]) == []

    def test_merges_along_one_field(self):
        merged = aggregate_discrepancies([cell((0, 4), (2, 3)), cell((5, 9), (2, 3))])
        assert len(merged) == 1
        assert merged[0].sets[0] == IntervalSet.span(0, 9)

    def test_merges_non_adjacent_slivers(self):
        # IntervalSets union even with gaps; a box differing only in F1
        # merges into one region with a two-interval F1 set.
        merged = aggregate_discrepancies([cell((0, 1), (2, 3)), cell((8, 9), (2, 3))])
        assert len(merged) == 1
        assert merged[0].sets[0] == IntervalSet.of((0, 1), (8, 9))

    def test_does_not_merge_across_decision_pairs(self):
        merged = aggregate_discrepancies(
            [cell((0, 4), (2, 3)), cell((5, 9), (2, 3), a=ACCEPT_LOG)]
        )
        assert len(merged) == 2

    def test_does_not_merge_two_field_difference(self):
        merged = aggregate_discrepancies([cell((0, 4), (0, 1)), cell((5, 9), (2, 3))])
        assert len(merged) == 2

    def test_cascade_merge(self):
        # Four quadrant cells collapse into one full box (two passes).
        cells = [
            cell((0, 4), (0, 4)),
            cell((5, 9), (0, 4)),
            cell((0, 4), (5, 9)),
            cell((5, 9), (5, 9)),
        ]
        merged = aggregate_discrepancies(cells)
        assert len(merged) == 1
        assert merged[0].size() == 100

    def test_deterministic_order(self):
        cells = [cell((5, 9), (0, 1)), cell((0, 1), (5, 9))]
        once = aggregate_discrepancies(cells)
        twice = aggregate_discrepancies(list(reversed(cells)))
        assert [d.sets for d in once] == [d.sets for d in twice]

    @given(firewalls(SCHEMA, max_rules=4), firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=30, deadline=None)
    def test_aggregation_preserves_coverage(self, fw_a, fw_b):
        raw = compare_firewalls(fw_a, fw_b)
        merged = aggregate_discrepancies(raw)
        assert covered_packets(merged) == covered_packets(raw)
        assert len(merged) <= len(raw)
        # Regions stay disjoint: total size equals covered cardinality.
        assert sum(d.size() for d in merged) == len(covered_packets(merged))
