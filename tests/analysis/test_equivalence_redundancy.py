"""Tests for semantic equivalence and redundancy removal [19]."""

from hypothesis import given, settings

from repro.analysis import (
    disputed_packet_count,
    equivalent,
    find_redundant_rules,
    find_upward_redundant,
    remove_redundant_rules,
)
from repro.fields import enumerate_universe, toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Rule

from tests.conftest import firewalls

SCHEMA = toy_schema(9, 9)


def r(decision, **conjuncts):
    return Rule.build(SCHEMA, decision, **conjuncts)


class TestEquivalence:
    def test_reordered_disjoint_rules_equivalent(self):
        fw_a = Firewall(SCHEMA, [r(ACCEPT, F1="0-3"), r(DISCARD, F1="4-9")])
        fw_b = Firewall(SCHEMA, [r(DISCARD, F1="4-9"), r(ACCEPT, F1="0-3")])
        assert equivalent(fw_a, fw_b)

    def test_different_policies_not_equivalent(self):
        fw_a = Firewall(SCHEMA, [r(ACCEPT)])
        fw_b = Firewall(SCHEMA, [r(DISCARD, F1="0"), r(ACCEPT)])
        assert not equivalent(fw_a, fw_b)
        assert disputed_packet_count(fw_a, fw_b) == 10

    @given(firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=25, deadline=None)
    def test_equivalence_reflexive(self, firewall):
        assert equivalent(firewall, firewall)

    @given(firewalls(SCHEMA, max_rules=3), firewalls(SCHEMA, max_rules=3))
    @settings(max_examples=25, deadline=None)
    def test_disputed_count_matches_brute_force(self, fw_a, fw_b):
        brute = sum(
            1 for p in enumerate_universe(SCHEMA) if fw_a(p) != fw_b(p)
        )
        assert disputed_packet_count(fw_a, fw_b) == brute


class TestUpwardRedundancy:
    def test_fully_shadowed_rule(self):
        firewall = Firewall(
            SCHEMA, [r(ACCEPT, F1="0-5"), r(DISCARD, F1="2-3"), r(DISCARD)]
        )
        assert find_upward_redundant(firewall) == [1]

    def test_partially_shadowed_not_flagged(self):
        firewall = Firewall(
            SCHEMA, [r(ACCEPT, F1="0-5"), r(DISCARD, F1="4-7"), r(DISCARD)]
        )
        assert find_upward_redundant(firewall) == []

    def test_shadowed_by_union_of_rules(self):
        # No single earlier rule covers rule 3, but together they do —
        # and rules 1+2 already cover the whole universe, so the final
        # catch-all is unreachable too.
        firewall = Firewall(
            SCHEMA,
            [
                r(ACCEPT, F1="0-4"),
                r(ACCEPT, F1="5-9"),
                r(DISCARD, F1="2-7"),
                r(DISCARD),
            ],
        )
        assert find_upward_redundant(firewall) == [2, 3]


class TestCompleteRedundancy:
    def test_downward_redundant_detected(self):
        # Rule 1 repeats what the catch-all would decide anyway.
        firewall = Firewall(SCHEMA, [r(ACCEPT, F1="0-3"), r(ACCEPT)])
        assert find_redundant_rules(firewall) == [0]

    def test_upward_redundant_detected(self):
        firewall = Firewall(
            SCHEMA, [r(ACCEPT, F1="0-5"), r(DISCARD, F1="2-3"), r(DISCARD)]
        )
        assert 1 in find_redundant_rules(firewall)

    def test_catchall_protected(self):
        firewall = Firewall(SCHEMA, [r(ACCEPT, F1="0-3"), r(DISCARD)])
        assert 1 not in find_redundant_rules(firewall)


class TestRemoveRedundant:
    def test_removes_to_fixpoint(self):
        firewall = Firewall(
            SCHEMA,
            [
                r(ACCEPT, F1="0-3"),
                r(ACCEPT, F1="2-3"),  # shadowed
                r(ACCEPT, F1="0-5"),  # covers rule 1 too
                r(DISCARD),
            ],
        )
        slim = remove_redundant_rules(firewall)
        assert equivalent(slim, firewall)
        assert len(slim) == 2

    def test_nothing_to_remove(self):
        firewall = Firewall(SCHEMA, [r(ACCEPT, F1="0-3"), r(DISCARD)])
        assert remove_redundant_rules(firewall) == firewall

    @given(firewalls(SCHEMA, max_rules=5, include_log=True))
    @settings(max_examples=20, deadline=None)
    def test_removal_preserves_semantics(self, firewall):
        slim = remove_redundant_rules(firewall)
        assert len(slim) <= len(firewall)
        assert equivalent(slim, firewall)
        # And the result is itself irredundant (fixpoint).
        assert not [
            i for i in find_redundant_rules(slim)
        ], "fixpoint must have no individually removable rule"
