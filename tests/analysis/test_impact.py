"""Tests for change impact analysis (Sections 1.3 / 8.1)."""

from hypothesis import given, settings

from repro.analysis import ImpactKind, analyze_change
from repro.fields import enumerate_universe, toy_schema
from repro.policy import ACCEPT, ACCEPT_LOG, DISCARD, Firewall, Rule
from repro.synth import flip_decision

from tests.conftest import firewalls

SCHEMA = toy_schema(9, 9)


def r(decision, **conjuncts):
    return Rule.build(SCHEMA, decision, **conjuncts)


BASE = Firewall(SCHEMA, [r(DISCARD, F1="0-4"), r(ACCEPT)], name="v1")


class TestClassification:
    def test_newly_allowed(self):
        after = BASE.remove(0).prepend(r(DISCARD, F1="0-2")).with_name("v2")
        report = analyze_change(BASE, after)
        kinds = report.by_kind()
        assert len(kinds[ImpactKind.NEWLY_ALLOWED]) == 1
        assert not kinds[ImpactKind.NEWLY_BLOCKED]
        region = kinds[ImpactKind.NEWLY_ALLOWED][0]
        assert set(region.sets[0]) == {3, 4}

    def test_newly_blocked(self):
        after = BASE.prepend(r(DISCARD, F1="7-8"))
        report = analyze_change(BASE, after)
        kinds = report.by_kind()
        assert len(kinds[ImpactKind.NEWLY_BLOCKED]) == 1
        assert report.affected_packets() == 20

    def test_handling_changed(self):
        after = BASE.replace(1, r(ACCEPT_LOG))
        report = analyze_change(BASE, after)
        kinds = report.by_kind()
        assert kinds[ImpactKind.HANDLING_CHANGED]
        assert not kinds[ImpactKind.NEWLY_ALLOWED]
        assert not kinds[ImpactKind.NEWLY_BLOCKED]

    def test_noop_change(self):
        # Inserting a rule that repeats existing semantics has no impact.
        after = BASE.insert(0, r(DISCARD, F1="1-2"))
        report = analyze_change(BASE, after)
        assert report.is_noop
        assert "no semantic effect" in report.render()


class TestRendering:
    def test_render_mentions_kinds_and_names(self):
        after = BASE.prepend(r(DISCARD, F1="7-8")).with_name("v2")
        text = analyze_change(BASE, after).render()
        assert "'v1' -> 'v2'" in text
        assert ImpactKind.NEWLY_BLOCKED in text
        assert "20 packet(s)" in text

    def test_table(self):
        after = BASE.prepend(r(DISCARD, F1="7-8")).with_name("v2")
        table = analyze_change(BASE, after).table()
        assert "v1" in table and "v2" in table


class TestProperties:
    @given(firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=20, deadline=None)
    def test_impact_matches_brute_force(self, firewall):
        # Flip the decision of the first rule: the impact must be exactly
        # the packets whose decision changed.
        changed = firewall.replace(
            0, firewall[0].with_decision(flip_decision(firewall[0].decision))
        )
        report = analyze_change(firewall, changed)
        expected = sum(
            1 for p in enumerate_universe(SCHEMA) if firewall(p) != changed(p)
        )
        assert report.affected_packets() == expected
        assert report.is_noop == (expected == 0)
