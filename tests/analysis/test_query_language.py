"""Tests for the textual query language."""

import pytest

from repro.analysis import QuerySession, parse_query, run_query
from repro.exceptions import QueryError
from repro.fields import toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Rule
from repro.synth import team_b_firewall

SCHEMA = toy_schema(9, 9)

FIREWALL = Firewall(
    SCHEMA,
    [
        Rule.build(SCHEMA, DISCARD, F1="0-2"),
        Rule.build(SCHEMA, ACCEPT, F1="3-6", F2="0-4"),
        Rule.build(SCHEMA, DISCARD),
    ],
)


class TestParse:
    def test_which_packets(self):
        q = parse_query("which packets accept where F1=3-6", SCHEMA)
        assert q.verb == "which"
        assert q.decision == ACCEPT
        assert q.region.field_set("F1").count() == 4

    def test_count_and_any(self):
        assert parse_query("count discard", SCHEMA).verb == "count"
        assert parse_query("any accept", SCHEMA).verb == "any"

    def test_multiple_conditions(self):
        q = parse_query("count accept where F1=1 and F2=2-3", SCHEMA)
        assert q.region.field_set("F2").count() == 2

    def test_describe_round_trip(self):
        q = parse_query("count accept where F1=1", SCHEMA)
        again = parse_query(q.describe(), SCHEMA)
        assert again == q

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "ponder accept",
            "which accept",               # missing 'packets'
            "count",                      # missing decision
            "count maybe",                # bad decision
            "count accept where F1",      # bad condition
            "count accept where F9=1",    # unknown field
            "count accept where F1=1 and F1=2",  # duplicate
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad, SCHEMA)


class TestRun:
    def test_count(self):
        assert run_query("count accept", FIREWALL) == "20"
        assert run_query("count discard", FIREWALL) == "80"

    def test_count_with_region(self):
        assert run_query("count accept where F1=0-2", FIREWALL) == "0"

    def test_any_witness(self):
        answer = run_query("any accept where F1=3-6", FIREWALL)
        assert answer != "none"

    def test_any_none(self):
        assert run_query("any accept where F1=0-2", FIREWALL) == "none"

    def test_which_packets_lists_regions(self):
        answer = run_query("which packets accept", FIREWALL)
        assert "F1=" in answer

    def test_real_schema_vocabulary(self):
        fw = team_b_firewall()
        # Team B accepts TCP e-mail to the mail server on interface 0.
        schema_fw = fw
        count = run_query(
            "count accept where interface=0 and dst_ip=192.168.0.1"
            " and dst_port=smtp and protocol=0",
            schema_fw,
        )
        # All sources except the /16 malicious block: 2^32 - 2^16.
        assert int(count) == (1 << 32) - (1 << 16)


class TestSession:
    def test_session_reuses_fdd(self):
        session = QuerySession(FIREWALL)
        assert session.ask("count accept") == "20"
        assert session.ask("count discard") == "80"
        assert session.fdd is session.fdd
