"""Tests for the stateful firewall model ([11])."""

import pytest

from repro.addr import ip_to_int
from repro.exceptions import SchemaError
from repro.intervals import IntervalSet
from repro.fields import standard_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Predicate, Rule
from repro.stateful import (
    STATE_ESTABLISHED,
    STATE_NEW,
    ConnectionTable,
    FlowKey,
    StatefulFirewall,
    stateful_schema,
)

INSIDE = ip_to_int("10.0.0.5")
OUTSIDE = ip_to_int("192.0.2.1")


class TestFlowKey:
    def test_reversed(self):
        key = FlowKey(1, 2, 30, 40, 6)
        rev = key.reversed()
        assert (rev.src_ip, rev.dst_ip) == (2, 1)
        assert (rev.src_port, rev.dst_port) == (40, 30)
        assert rev.reversed() == key

    def test_of_packet(self):
        key = FlowKey.of_packet((1, 2, 3, 4, 5))
        assert key == FlowKey(1, 2, 3, 4, 5)


class TestConnectionTable:
    def test_insert_lookup(self):
        table = ConnectionTable(ttl=10)
        key = FlowKey(1, 2, 3, 4, 6)
        assert not table.lookup(key, now=0)
        table.insert(key, now=0)
        assert table.lookup(key, now=5)

    def test_expiry(self):
        table = ConnectionTable(ttl=10)
        key = FlowKey(1, 2, 3, 4, 6)
        table.insert(key, now=0)
        assert not table.lookup(key, now=11)
        assert len(table) == 0  # expired entry dropped on lookup

    def test_lookup_refreshes(self):
        table = ConnectionTable(ttl=10)
        key = FlowKey(1, 2, 3, 4, 6)
        table.insert(key, now=0)
        assert table.lookup(key, now=9)   # refresh to 19
        assert table.lookup(key, now=18)  # still alive

    def test_capacity_eviction(self):
        table = ConnectionTable(capacity=2, ttl=10)
        first = FlowKey(1, 1, 1, 1, 6)
        second = FlowKey(2, 2, 2, 2, 6)
        third = FlowKey(3, 3, 3, 3, 6)
        table.insert(first, now=0)
        table.insert(second, now=5)
        table.insert(third, now=6)  # evicts first (earliest expiry)
        assert not table.lookup(first, now=6)
        assert table.lookup(second, now=6)
        assert table.lookup(third, now=6)

    def test_expire_sweep(self):
        table = ConnectionTable(ttl=10)
        table.insert(FlowKey(1, 1, 1, 1, 6), now=0)
        table.insert(FlowKey(2, 2, 2, 2, 6), now=100)
        assert table.expire(now=50) == 1
        assert len(table) == 1

    def test_remove(self):
        table = ConnectionTable()
        key = FlowKey(1, 2, 3, 4, 6)
        table.insert(key, now=0)
        assert table.remove(key)
        assert not table.remove(key)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConnectionTable(capacity=0)
        with pytest.raises(ValueError):
            ConnectionTable(ttl=0)


def gateway() -> StatefulFirewall:
    """Canonical stateful policy: outbound free, inbound only replies."""
    schema = stateful_schema()
    policy = Firewall(
        schema,
        [
            Rule.build(schema, ACCEPT, "return traffic", state=STATE_ESTABLISHED),
            Rule.build(schema, ACCEPT, "outbound", src_ip="10.0.0.0/8"),
            Rule.build(schema, DISCARD, "default deny"),
        ],
    )
    tracking = [Predicate.from_fields(schema, src_ip="10.0.0.0/8")]
    return StatefulFirewall(policy, tracking=tracking, table=ConnectionTable(ttl=60))


class TestStatefulFirewall:
    def test_outbound_then_reply(self):
        fw = gateway()
        assert fw.process((INSIDE, OUTSIDE, 4000, 80, 6), now=0.0) == ACCEPT
        assert fw.process((OUTSIDE, INSIDE, 80, 4000, 6), now=1.0) == ACCEPT

    def test_unsolicited_inbound_dropped(self):
        fw = gateway()
        assert fw.process((OUTSIDE, INSIDE, 80, 4000, 6), now=0.0) == DISCARD

    def test_reply_after_ttl_dropped(self):
        fw = gateway()
        fw.process((INSIDE, OUTSIDE, 4000, 80, 6), now=0.0)
        assert fw.process((OUTSIDE, INSIDE, 80, 4000, 6), now=61.0) == DISCARD

    def test_wrong_port_reply_dropped(self):
        fw = gateway()
        fw.process((INSIDE, OUTSIDE, 4000, 80, 6), now=0.0)
        assert fw.process((OUTSIDE, INSIDE, 80, 4001, 6), now=1.0) == DISCARD

    def test_discarded_packets_create_no_state(self):
        schema = stateful_schema()
        policy = Firewall(
            schema,
            [
                Rule.build(schema, ACCEPT, state=STATE_ESTABLISHED),
                Rule.build(schema, DISCARD),
            ],
        )
        fw = StatefulFirewall(
            policy, tracking=[Predicate.match_all(schema)]
        )
        assert fw.process((INSIDE, OUTSIDE, 1, 2, 6), now=0.0) == DISCARD
        assert len(fw.table) == 0

    def test_simulate_stream(self):
        fw = gateway()
        decisions = fw.simulate(
            [
                (0.0, (INSIDE, OUTSIDE, 4000, 80, 6)),
                (0.5, (OUTSIDE, INSIDE, 80, 4000, 6)),
                (0.6, (OUTSIDE, INSIDE, 80, 9999, 6)),
            ]
        )
        assert [d.name for d in decisions] == ["accept", "accept", "discard"]

    def test_active_flow_outlives_ttl(self):
        fw = gateway()
        fw.process((INSIDE, OUTSIDE, 4000, 80, 6), now=0.0)
        # Keep the flow alive with replies every 50s (< ttl=60).
        for t in (50.0, 100.0, 150.0):
            assert fw.process((OUTSIDE, INSIDE, 80, 4000, 6), now=t) == ACCEPT

    def test_schema_enforced(self):
        base = standard_schema()
        stateless = Firewall(base, [Rule.build(base, ACCEPT)])
        with pytest.raises(SchemaError):
            StatefulFirewall(stateless)

    def test_tracking_predicate_schema_enforced(self):
        schema = stateful_schema()
        policy = Firewall(schema, [Rule.build(schema, ACCEPT)])
        alien = Predicate.match_all(standard_schema())
        with pytest.raises(SchemaError):
            StatefulFirewall(policy, tracking=[alien])


class TestStatefulAnalysis:
    def test_compare_stateful_policies(self):
        """The paper's algorithms apply to stateful sections unchanged."""
        from repro.fdd import compare_firewalls

        schema = stateful_schema()
        strict = Firewall(
            schema,
            [
                Rule.build(schema, ACCEPT, state=STATE_ESTABLISHED),
                Rule.build(schema, ACCEPT, src_ip="10.0.0.0/8", protocol="tcp"),
                Rule.build(schema, DISCARD),
            ],
        )
        loose = Firewall(
            schema,
            [
                Rule.build(schema, ACCEPT, state=STATE_ESTABLISHED),
                Rule.build(schema, ACCEPT, src_ip="10.0.0.0/8"),
                Rule.build(schema, DISCARD),
            ],
        )
        discs = compare_firewalls(strict, loose)
        assert discs
        # Every disputed packet is new (state=0) non-TCP outbound traffic.
        for disc in discs:
            assert disc.sets[0] == IntervalSet.single(STATE_NEW)
