"""Run every module's doctests (the examples embedded in docstrings)."""

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
)


@pytest.mark.parametrize("module_name", MODULES + ["repro"])
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    failures, _tests = doctest.testmod(module, verbose=False)
    assert failures == 0
