"""The content-addressed result cache: keys, integrity, corruption."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.audit.cache import ENTRY_FORMAT, ResultCache


@pytest.fixture
def cache(tmp_path: Path) -> ResultCache:
    return ResultCache(tmp_path / "cache")


PAYLOAD = {"diagnostics": [{"code": "FW001"}], "summary": {"error": 0}}


def put_one(cache: ResultCache, key: str) -> None:
    cache.put(
        key,
        PAYLOAD,
        kind="lint",
        fingerprints=("f" * 64,),
        checkset_id="cs1",
        guard_spend={"nodes_expanded": 7},
    )


class TestKeys:
    def test_deterministic(self):
        a = ResultCache.key("lint", ("fp1",), "cs1")
        assert a == ResultCache.key("lint", ("fp1",), "cs1")

    @pytest.mark.parametrize(
        "kind, fingerprints, checkset",
        [
            ("compare", ("fp1",), "cs1"),  # kind differs
            ("lint", ("fp2",), "cs1"),  # fingerprint differs
            ("lint", ("fp1", "fp2"), "cs1"),  # arity differs
            ("lint", ("fp1",), "cs2"),  # check-set version differs
        ],
    )
    def test_every_component_keys(self, kind, fingerprints, checkset):
        assert ResultCache.key(kind, fingerprints, checkset) != ResultCache.key(
            "lint", ("fp1",), "cs1"
        )

    def test_fingerprint_order_matters(self):
        # (policy, baseline) is ordered: a comparison A-vs-B is not B-vs-A.
        assert ResultCache.key("compare", ("a", "b"), "cs") != ResultCache.key(
            "compare", ("b", "a"), "cs"
        )

    def test_no_concatenation_ambiguity(self):
        assert ResultCache.key("lint", ("ab", "c"), "cs") != ResultCache.key(
            "lint", ("a", "bc"), "cs"
        )


class TestEntries:
    def test_roundtrip_with_provenance(self, cache: ResultCache):
        key = ResultCache.key("lint", ("fp",), "cs")
        put_one(cache, key)
        entry = cache.get(key)
        assert entry is not None
        assert entry.payload == PAYLOAD
        assert entry.provenance["kind"] == "lint"
        assert entry.provenance["checkset"] == "cs1"
        assert entry.provenance["guard_spend"] == {"nodes_expanded": 7}
        assert entry.provenance["tool"]["name"] == "repro-audit"
        assert cache.stats()["hits"] == 1

    def test_miss_counts(self, cache: ResultCache):
        assert cache.get("0" * 64) is None
        assert cache.stats()["misses"] == 1
        assert cache.stats()["corrupt"] == 0

    def _entry_path(self, cache: ResultCache, key: str) -> Path:
        return cache.root / "objects" / key[:2] / f"{key}.json"

    def test_tampered_payload_detected_and_discarded(self, cache: ResultCache):
        key = ResultCache.key("lint", ("fp",), "cs")
        put_one(cache, key)
        path = self._entry_path(cache, key)
        document = json.loads(path.read_text())
        document["payload"]["summary"] = {"error": 999}
        path.write_text(json.dumps(document))
        assert cache.get(key) is None
        assert cache.corrupt == 1
        assert not path.exists(), "corrupt entries are deleted for recomputation"

    def test_truncated_entry_detected(self, cache: ResultCache):
        key = ResultCache.key("lint", ("fp",), "cs")
        put_one(cache, key)
        path = self._entry_path(cache, key)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get(key) is None
        assert cache.corrupt == 1
        assert not path.exists()

    def test_wrong_format_tag_detected(self, cache: ResultCache):
        key = ResultCache.key("lint", ("fp",), "cs")
        put_one(cache, key)
        path = self._entry_path(cache, key)
        document = json.loads(path.read_text())
        document["format"] = ENTRY_FORMAT + 1
        path.write_text(json.dumps(document))
        assert cache.get(key) is None
        assert cache.corrupt == 1

    def test_non_object_entry_detected(self, cache: ResultCache):
        key = "a" * 64
        path = self._entry_path(cache, key)
        path.parent.mkdir(parents=True)
        path.write_text('["not", "an", "entry"]')
        assert cache.get(key) is None
        assert cache.corrupt == 1

    def test_overwrite_is_atomic_replace(self, cache: ResultCache):
        key = ResultCache.key("lint", ("fp",), "cs")
        put_one(cache, key)
        cache.put(
            key,
            {"other": 1},
            kind="lint",
            fingerprints=("fp",),
            checkset_id="cs1",
        )
        entry = cache.get(key)
        assert entry is not None and entry.payload == {"other": 1}
        leftovers = list((cache.root / "objects").rglob("*.tmp"))
        assert leftovers == []

    def test_iter_and_count(self, cache: ResultCache):
        keys = {ResultCache.key("lint", (f"fp{i}",), "cs") for i in range(5)}
        for key in keys:
            put_one(cache, key)
        assert set(cache.iter_keys()) == keys
        assert cache.entry_count() == 5


class TestFingerprintMemo:
    def test_roundtrip(self, cache: ResultCache):
        digest = ResultCache.source_digest(b"policy bytes")
        assert cache.fingerprint_get(digest) is None
        cache.fingerprint_put(digest, "deadbeef")
        assert cache.fingerprint_get(digest) == "deadbeef"
        assert cache.stats()["fingerprint_hits"] == 1
        assert cache.stats()["fingerprint_misses"] == 1

    def test_source_digest_is_content_hash(self):
        assert ResultCache.source_digest(b"x") == ResultCache.source_digest(b"x")
        assert ResultCache.source_digest(b"x") != ResultCache.source_digest(b"y")

    def test_corrupt_memo_discarded(self, cache: ResultCache):
        digest = ResultCache.source_digest(b"policy")
        cache.fingerprint_put(digest, "cafe")
        path = cache.root / "fingerprints" / digest[:2] / f"{digest}.json"
        path.write_text("{ truncated")
        assert cache.fingerprint_get(digest) is None
        assert cache.corrupt == 1
        assert not path.exists()

    def test_memo_for_wrong_digest_discarded(self, cache: ResultCache):
        # An entry whose recorded source digest disagrees with its
        # filename (e.g. a manually moved file) must not be trusted.
        digest_a = ResultCache.source_digest(b"a")
        digest_b = ResultCache.source_digest(b"b")
        cache.fingerprint_put(digest_a, "fp-a")
        src = cache.root / "fingerprints" / digest_a[:2] / f"{digest_a}.json"
        dst = cache.root / "fingerprints" / digest_b[:2] / f"{digest_b}.json"
        dst.parent.mkdir(parents=True, exist_ok=True)
        dst.write_text(src.read_text())
        assert cache.fingerprint_get(digest_b) is None
        assert cache.corrupt == 1


class TestSizeBounds:
    """LRU size bounds: ``max_bytes`` caps ``objects/``, hits refresh."""

    def _sized_cache(self, tmp_path: Path, max_bytes: int) -> ResultCache:
        return ResultCache(tmp_path / "bounded", max_bytes=max_bytes)

    @staticmethod
    def _entry_size(cache: ResultCache, key: str) -> int:
        return cache._object_path(key).stat().st_size

    def test_rejects_non_positive_bound(self, tmp_path: Path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path / "c", max_bytes=0)

    def test_unbounded_cache_never_evicts(self, cache: ResultCache):
        for i in range(20):
            put_one(cache, f"{i:064d}")
        assert cache.evictions == 0
        assert cache.entry_count() == 20

    def test_evicts_oldest_first_until_under_bound(self, tmp_path: Path):
        import time

        probe = self._sized_cache(tmp_path, max_bytes=10**9)
        put_one(probe, "0" * 64)
        size = self._entry_size(probe, "0" * 64)
        # Room for exactly three entries.
        cache = ResultCache(tmp_path / "lru", max_bytes=size * 3)
        keys = [f"{i:064d}" for i in range(5)]
        for key in keys:
            put_one(cache, key)
            time.sleep(0.01)
        assert cache.evictions == 2
        assert cache.get(keys[0]) is None and cache.get(keys[1]) is None
        for key in keys[2:]:
            assert cache.get(key) is not None

    def test_hit_refreshes_recency(self, tmp_path: Path):
        import time

        probe = self._sized_cache(tmp_path, max_bytes=10**9)
        put_one(probe, "0" * 64)
        size = self._entry_size(probe, "0" * 64)
        cache = ResultCache(tmp_path / "lru", max_bytes=size * 3)
        keys = [f"{i:064d}" for i in range(3)]
        for key in keys:
            put_one(cache, key)
            time.sleep(0.01)
        # Touch the oldest: the *second* oldest must be evicted next.
        assert cache.get(keys[0]) is not None
        time.sleep(0.01)
        put_one(cache, "f" * 64)
        assert cache.evictions == 1
        assert cache.get(keys[0]) is not None, "touched entry was evicted"
        assert cache.get(keys[1]) is None, "cold entry survived"

    def test_fingerprint_memo_is_never_evicted(self, tmp_path: Path):
        cache = ResultCache(tmp_path / "lru", max_bytes=1)
        digest = ResultCache.source_digest(b"policy")
        cache.fingerprint_put(digest, "cafe")
        put_one(cache, "a" * 64)  # evicts itself (bound is 1 byte)
        assert cache.evictions == 1
        assert cache.entry_count() == 0
        assert cache.fingerprint_get(digest) == "cafe"

    def test_evictions_surface_in_stats(self, tmp_path: Path):
        cache = ResultCache(tmp_path / "lru", max_bytes=1)
        put_one(cache, "a" * 64)
        assert cache.stats()["evictions"] == 1
