"""Fleet manifests: directory scans, JSON manifests, tenant budgets."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.audit.manifest import (
    AuditManifestError,
    TenantBudget,
    load_manifest,
)
from tests.audit.conftest import BASELINE_ACCEPT, POLICY_CLEAN, POLICY_DIVERGED


class TestDirectoryManifest:
    def test_scan_is_recursive_sorted_and_tenanted(self, fleet: Path):
        manifest = load_manifest(fleet)
        assert [entry.name for entry in manifest.entries] == [
            "core.fw",
            "team-a/edge.fw",
        ]
        assert [entry.tenant for entry in manifest.entries] == ["default", "team-a"]
        assert all(Path(entry.path).is_absolute() for entry in manifest.entries)

    def test_cli_baseline_applies_fleet_wide(self, fleet: Path, baseline: Path):
        manifest = load_manifest(fleet, baseline=str(baseline))
        for entry in manifest.entries:
            assert manifest.baseline_for(entry) == str(baseline.resolve())

    def test_no_baseline_by_default(self, fleet: Path):
        manifest = load_manifest(fleet)
        assert manifest.baseline is None

    def test_empty_directory_rejected(self, tmp_path: Path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(AuditManifestError, match="no policies"):
            load_manifest(tmp_path / "empty")

    def test_missing_path_rejected(self, tmp_path: Path):
        with pytest.raises(AuditManifestError, match="not found"):
            load_manifest(tmp_path / "nowhere")

    def test_missing_cli_baseline_rejected(self, fleet: Path, tmp_path: Path):
        with pytest.raises(AuditManifestError, match="baseline"):
            load_manifest(fleet, baseline=str(tmp_path / "ghost.fw"))


class TestJsonManifest:
    def write(self, tmp_path: Path, document: dict) -> Path:
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(document))
        return path

    def test_full_manifest(self, tmp_path: Path):
        (tmp_path / "a.fw").write_text(POLICY_DIVERGED)
        (tmp_path / "b.fw").write_text(POLICY_CLEAN)
        (tmp_path / "golden.fw").write_text(BASELINE_ACCEPT)
        path = self.write(
            tmp_path,
            {
                "baseline": "golden.fw",
                "tenants": {"team-a": {"max_nodes": 1000, "deadline_s": 2.5}},
                "policies": [
                    {"path": "b.fw"},
                    {"path": "a.fw", "tenant": "team-a", "baseline": "b.fw"},
                ],
            },
        )
        manifest = load_manifest(path)
        assert [e.name for e in manifest.entries] == ["a.fw", "b.fw"]
        entry_a, entry_b = manifest.entries
        # Per-policy baseline wins; others inherit the fleet baseline.
        assert manifest.baseline_for(entry_a).endswith("b.fw")
        assert manifest.baseline_for(entry_b).endswith("golden.fw")
        assert manifest.tenants["team-a"] == TenantBudget(
            max_nodes=1000, deadline_s=2.5
        )
        budget = manifest.budget_for(entry_a)
        assert budget is not None and budget.max_nodes == 1000
        assert manifest.budget_for(entry_b) is None

    def test_tenant_budget_roundtrip(self):
        assert TenantBudget().to_budget() is None
        budget = TenantBudget(max_nodes=5).to_budget()
        assert budget is not None and budget.max_nodes == 5

    def test_invalid_json_rejected(self, tmp_path: Path):
        path = tmp_path / "fleet.json"
        path.write_text("{ nope")
        with pytest.raises(AuditManifestError, match="not valid JSON"):
            load_manifest(path)

    def test_unknown_budget_keys_rejected(self, tmp_path: Path):
        (tmp_path / "a.fw").write_text(POLICY_CLEAN)
        path = self.write(
            tmp_path,
            {
                "tenants": {"t": {"max_nodez": 1}},
                "policies": [{"path": "a.fw"}],
            },
        )
        with pytest.raises(AuditManifestError, match="unknown budget keys"):
            load_manifest(path)

    def test_missing_policy_file_rejected(self, tmp_path: Path):
        path = self.write(tmp_path, {"policies": [{"path": "ghost.fw"}]})
        with pytest.raises(AuditManifestError, match="not found"):
            load_manifest(path)

    def test_entry_without_path_rejected(self, tmp_path: Path):
        path = self.write(tmp_path, {"policies": [{"tenant": "t"}]})
        with pytest.raises(AuditManifestError, match="'path'"):
            load_manifest(path)

    def test_empty_policy_list_rejected(self, tmp_path: Path):
        path = self.write(tmp_path, {"policies": []})
        with pytest.raises(AuditManifestError, match="no policies"):
            load_manifest(path)
