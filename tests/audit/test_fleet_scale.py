"""Acceptance: a 50+ policy synthetic fleet, end to end.

Exercises ISSUE acceptance criteria: the aggregated SARIF document is
schema-valid, and an immediate re-audit against a warm cache performs
zero FDD constructions for unchanged policies, runs at least 10x
faster, and reports byte-identical diagnostics.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.audit import (
    ResultCache,
    audit_fleet,
    load_manifest,
    render_audit_sarif,
)
from repro.policy import dumps
from repro.synth import SyntheticFirewallGenerator

FLEET_SIZE = 52
SCHEMA_PATH = (
    Path(__file__).resolve().parent.parent / "lint" / "sarif-2.1.0-subset.schema.json"
)


@pytest.fixture(scope="module")
def fleet_dir(tmp_path_factory) -> Path:
    root = tmp_path_factory.mktemp("synthetic-fleet")
    for index in range(FLEET_SIZE):
        generator = SyntheticFirewallGenerator(seed=1000 + index)
        firewall = generator.generate(6, name=f"synthetic-{index:03d}")
        tenant = root / f"tenant-{index % 4}"
        tenant.mkdir(exist_ok=True)
        (tenant / f"policy-{index:03d}.fw").write_text(dumps(firewall, "standard"))
    baseline = SyntheticFirewallGenerator(seed=999).generate(6, name="golden")
    (root / "golden.fw").write_text(dumps(baseline, "standard"))
    return root


def test_fleet_scale_cold_warm(fleet_dir: Path, tmp_path: Path):
    manifest = load_manifest(
        fleet_dir, baseline=str(fleet_dir / "golden.fw")
    )
    assert len(manifest.entries) == FLEET_SIZE + 1  # golden.fw audits itself too

    started = time.perf_counter()
    cold = audit_fleet(manifest, cache=ResultCache(tmp_path / "cache"))
    cold_elapsed = time.perf_counter() - started

    assert cold.stats.policies == FLEET_SIZE + 1
    assert cold.stats.errors == 0
    assert cold.stats.fdd_constructions >= FLEET_SIZE

    started = time.perf_counter()
    warm = audit_fleet(manifest, cache=ResultCache(tmp_path / "cache"))
    warm_elapsed = time.perf_counter() - started

    # Zero FDD constructions for unchanged policies, verified via stats.
    assert warm.stats.fdd_constructions == 0
    assert warm.stats.fully_cached == warm.stats.policies
    assert warm.cache_stats["misses"] == 0
    assert warm.cache_stats["fingerprint_misses"] == 0

    # The warm audit must be at least 10x faster than the cold one.
    assert warm_elapsed * 10 <= cold_elapsed, (
        f"warm {warm_elapsed:.3f}s vs cold {cold_elapsed:.3f}s"
    )

    # Diagnostic parity: identical stage payloads and SARIF results.
    assert {r.name: r.stages for r in cold.results} == {
        r.name: r.stages for r in warm.results
    }
    cold_sarif = json.loads(render_audit_sarif(cold))
    warm_sarif = json.loads(render_audit_sarif(warm))
    assert cold_sarif["runs"][0]["results"] == warm_sarif["runs"][0]["results"]


def test_fleet_scale_sarif_is_schema_valid(fleet_dir: Path):
    jsonschema = pytest.importorskip("jsonschema")
    manifest = load_manifest(fleet_dir, baseline=str(fleet_dir / "golden.fw"))
    report = audit_fleet(manifest)
    sarif = json.loads(render_audit_sarif(report))
    schema = json.loads(SCHEMA_PATH.read_text())
    validator_cls = jsonschema.validators.validator_for(schema)
    validator_cls.check_schema(schema)
    errors = list(validator_cls(schema).iter_errors(sarif))
    assert not errors, "\n".join(e.message for e in errors)
    assert len(sarif["runs"][0]["artifacts"]) == FLEET_SIZE + 1
