"""The fleet pipeline: caching tiers, budgets, failures, parallelism."""

from __future__ import annotations

import json

from repro.audit import (
    ResultCache,
    audit_fleet,
    load_manifest,
    resolve_checkset,
)
from repro.audit.checkset import CheckSet
from tests.audit.conftest import (
    BASELINE_STRICT,
    POLICY_CLEAN,
    POLICY_DIVERGED,
    POLICY_OPEN,
)


def stages_of(report):
    """Per-policy stage payloads, for cold/warm parity assertions."""
    return {result.name: result.stages for result in report.results}


class TestColdRun:
    def test_stages_and_statuses(self, fleet, baseline):
        report = audit_fleet(load_manifest(fleet, baseline=str(baseline)))
        assert report.stats.policies == 2
        assert all(result.status == "ok" for result in report.results)
        by_name = {result.name: result for result in report.results}
        assert by_name["core.fw"].diverged is False
        assert by_name["team-a/edge.fw"].diverged is True
        impact = by_name["team-a/edge.fw"].stages["impact"]
        assert impact["affected_packets"] > 0
        assert impact["packets_by_kind"]["newly blocked"] > 0

    def test_results_in_manifest_order(self, fleet, baseline):
        report = audit_fleet(load_manifest(fleet, baseline=str(baseline)))
        assert [result.name for result in report.results] == [
            "core.fw",
            "team-a/edge.fw",
        ]

    def test_without_baseline_runs_baseline_free_stages_only(self, fleet):
        report = audit_fleet(load_manifest(fleet))
        for result in report.results:
            assert "lint" in result.stages
            assert "simplify" in result.stages
            assert "compare" not in result.stages
            assert result.baseline_path is None

    def test_simplify_stage_payload(self, fleet, baseline):
        report = audit_fleet(load_manifest(fleet, baseline=str(baseline)))
        for result in report.results:
            payload = result.stages["simplify"]
            assert payload["rules_after"] <= payload["rules_before"]
            assert payload["strategy"] in ("slim", "regenerate")
            # The simplify stage's fingerprint is the policy's own
            # semantic fingerprint (equivalence is verified in-stage).
            assert payload["fingerprint"] == result.fingerprint

    def test_simplify_stage_caches_on_source_digest(self, fleet, baseline, tmp_path):
        manifest = load_manifest(fleet, baseline=str(baseline))
        checkset = resolve_checkset("simplify")
        audit_fleet(manifest, checkset=checkset, cache=ResultCache(tmp_path / "c"))
        warm = audit_fleet(
            manifest, checkset=checkset, cache=ResultCache(tmp_path / "c")
        )
        assert warm.stats.fully_cached == warm.stats.policies
        assert warm.stats.fdd_constructions == 0
        for result in warm.results:
            assert result.cached == {"simplify": True}

    def test_on_result_streams_every_policy(self, fleet, baseline):
        seen = []
        audit_fleet(
            load_manifest(fleet, baseline=str(baseline)),
            on_result=lambda result: seen.append(result.name),
        )
        assert sorted(seen) == ["core.fw", "team-a/edge.fw"]

    def test_lint_selection_respected(self, fleet):
        checkset = resolve_checkset("lint=FW001")
        report = audit_fleet(load_manifest(fleet), checkset=checkset)
        for result in report.results:
            assert result.stages["lint"]["checks_run"] == ["FW001"]


class TestCacheTiers:
    def test_warm_run_is_fully_cached_with_zero_constructions(
        self, fleet, baseline, tmp_path
    ):
        manifest = load_manifest(fleet, baseline=str(baseline))
        cold = audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        warm = audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        assert cold.stats.fdd_constructions > 0
        assert warm.stats.fdd_constructions == 0
        assert warm.stats.fully_cached == warm.stats.policies
        assert warm.cache_stats["fingerprint_misses"] == 0
        # Byte-identical stage payloads: cached results ARE the report.
        assert stages_of(cold) == stages_of(warm)

    def test_semantically_equal_rewrite_reuses_entries(
        self, fleet, baseline, tmp_path
    ):
        manifest = load_manifest(fleet, baseline=str(baseline))
        audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        # Reformat core.fw without changing semantics: the source digest
        # changes, so the syntactic stages (lint, simplify) recompute,
        # but the fingerprint resolves compare/impact to their existing
        # entries -- one FDD construction total.
        (fleet / "core.fw").write_text(
            POLICY_CLEAN.replace("any -> accept", "any   ->   accept  # same")
        )
        warm = audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        assert warm.cache_stats["hits"] > 0
        result = next(r for r in warm.results if r.name == "core.fw")
        assert result.status == "ok"
        assert result.stages.keys() == {"lint", "simplify", "compare", "impact"}
        assert result.cached == {
            "lint": False,
            "simplify": False,
            "compare": True,
            "impact": True,
        }

    def test_equivalent_policies_do_not_share_lint_results(self, tmp_path):
        # Two semantically equivalent but textually different policies
        # share compare/impact entries (fingerprint-keyed) yet MUST keep
        # distinct lint payloads: diagnostics name concrete rules/lines.
        root = tmp_path / "fleet"
        root.mkdir()
        (root / "a.fw").write_text(POLICY_CLEAN)
        (root / "b.fw").write_text(
            'firewall "clean" schema=standard\n'
            "src_ip=10.0.0.0/8 -> accept\n"
            "any -> accept\n"
        )
        manifest = load_manifest(root)
        cold = audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        warm = audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        assert stages_of(cold) == stages_of(warm)
        warm_by_name = {r.name: r for r in warm.results}
        a, b = warm_by_name["a.fw"], warm_by_name["b.fw"]
        assert a.fingerprint == b.fingerprint  # equivalent policies...
        assert a.stages["lint"] != b.stages["lint"]  # ...distinct lint

    def test_changed_policy_recomputes_only_itself(self, fleet, baseline, tmp_path):
        manifest = load_manifest(fleet, baseline=str(baseline))
        audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        (fleet / "core.fw").write_text(
            'firewall "clean" schema=standard\n'
            "src_ip=172.16.0.0/12 -> discard\n"
            "any -> accept\n"
        )
        warm = audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        by_name = {result.name: result for result in warm.results}
        assert by_name["team-a/edge.fw"].fully_cached
        assert not by_name["core.fw"].fully_cached
        assert by_name["core.fw"].diverged is True

    def test_version_bump_invalidates_exactly_that_stage(
        self, fleet, baseline, tmp_path
    ):
        manifest = load_manifest(fleet, baseline=str(baseline))
        base = resolve_checkset("all")
        audit_fleet(manifest, checkset=base, cache=ResultCache(tmp_path / "c"))
        bumped = CheckSet(
            stages=base.stages,
            lint_checks=tuple(
                (code, version + 1) for code, version in base.lint_checks
            ),
        )
        warm = audit_fleet(
            manifest, checkset=bumped, cache=ResultCache(tmp_path / "c")
        )
        for result in warm.results:
            # Stale lint entries must NOT be served under the new versions.
            assert result.cached["lint"] is False
            assert result.cached["compare"] is True
            assert result.cached["impact"] is True
        # And the old check set still has its own valid entries.
        again = audit_fleet(
            manifest, checkset=base, cache=ResultCache(tmp_path / "c")
        )
        assert again.stats.fully_cached == again.stats.policies

    def test_corrupt_entry_recomputed_with_identical_payload(
        self, fleet, baseline, tmp_path
    ):
        manifest = load_manifest(fleet, baseline=str(baseline))
        cold = audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        objects = sorted((tmp_path / "c" / "objects").rglob("*.json"))
        victim = objects[0]
        victim.write_text(victim.read_text()[:40])
        cache = ResultCache(tmp_path / "c")
        warm = audit_fleet(manifest, cache=cache)
        assert warm.cache_stats["corrupt"] >= 1
        assert all(result.status == "ok" for result in warm.results)
        assert stages_of(cold) == stages_of(warm)

    def test_missing_impact_entry_rederives_from_cached_compare(
        self, fleet, baseline, tmp_path
    ):
        manifest = load_manifest(fleet, baseline=str(baseline))
        cold = audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        removed = 0
        for path in (tmp_path / "c" / "objects").rglob("*.json"):
            if json.loads(path.read_text())["provenance"]["kind"] == "impact":
                path.unlink()
                removed += 1
        assert removed == 2
        warm = audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        # The impact stage is a pure function of the cached comparison:
        # re-deriving it must not construct any FDD.
        assert warm.stats.fdd_constructions == 0
        assert stages_of(cold) == stages_of(warm)

    def test_cache_is_content_addressed_not_path_addressed(self, tmp_path):
        # A copy of an already-audited policy under a new path is served
        # entirely from cache: the source digest resolves its fingerprint
        # and the stage entries already exist.
        root = tmp_path / "fleet"
        root.mkdir()
        (root / "one.fw").write_text(POLICY_CLEAN)
        audit_fleet(load_manifest(root), cache=ResultCache(tmp_path / "c"))
        (root / "two.fw").write_text(POLICY_CLEAN)
        warm = audit_fleet(load_manifest(root), cache=ResultCache(tmp_path / "c"))
        assert warm.stats.fdd_constructions == 0
        assert warm.stats.fully_cached == 2


class TestBudgetsAndFailures:
    def test_over_budget_policy_reported_and_fleet_continues(self, tmp_path):
        root = tmp_path / "fleet"
        (root / "tiny").mkdir(parents=True)
        (root / "tiny" / "big.fw").write_text(POLICY_DIVERGED)
        (root / "ok.fw").write_text(POLICY_CLEAN)
        manifest_doc = {
            "tenants": {"tiny": {"max_nodes": 1}},
            "policies": [
                {"path": "tiny/big.fw", "tenant": "tiny"},
                {"path": "ok.fw"},
            ],
        }
        manifest_path = root / "fleet.json"
        manifest_path.write_text(json.dumps(manifest_doc))
        report = audit_fleet(load_manifest(manifest_path))
        by_name = {result.name: result for result in report.results}
        assert by_name["tiny/big.fw"].status == "over-budget"
        assert by_name["tiny/big.fw"].guard_spend["nodes_expanded"] >= 1
        assert by_name["ok.fw"].status == "ok"
        assert report.stats.over_budget == 1

    def test_malformed_policy_reported_and_fleet_continues(self, fleet, baseline):
        (fleet / "broken.fw").write_text("firewall schema=standard\nnot a rule\n")
        report = audit_fleet(load_manifest(fleet, baseline=str(baseline)))
        by_name = {result.name: result for result in report.results}
        assert by_name["broken.fw"].status == "error"
        assert by_name["core.fw"].status == "ok"
        assert report.stats.errors == 1

    def test_over_budget_result_is_not_cached(self, tmp_path):
        root = tmp_path / "fleet"
        root.mkdir()
        (root / "big.fw").write_text(POLICY_DIVERGED)
        manifest_path = root / "fleet.json"
        manifest_path.write_text(
            json.dumps(
                {
                    "tenants": {"default": {"max_nodes": 1}},
                    "policies": [{"path": "big.fw"}],
                }
            )
        )
        cache = ResultCache(tmp_path / "c")
        audit_fleet(load_manifest(manifest_path), cache=cache)
        assert cache.entry_count() == 0


class TestParallel:
    def test_parallel_matches_serial(self, fleet, baseline, tmp_path):
        (fleet / "open.fw").write_text(POLICY_OPEN)
        (tmp_path / "strict.fw").write_text(BASELINE_STRICT)
        manifest = load_manifest(fleet, baseline=str(tmp_path / "strict.fw"))
        serial = audit_fleet(manifest)
        parallel = audit_fleet(manifest, jobs=2)
        assert stages_of(serial) == stages_of(parallel)
        assert [r.status for r in parallel.results] == ["ok", "ok", "ok"]

    def test_parallel_populates_cache_for_serial_warm_run(
        self, fleet, baseline, tmp_path
    ):
        manifest = load_manifest(fleet, baseline=str(baseline))
        audit_fleet(manifest, jobs=2, cache=ResultCache(tmp_path / "c"))
        warm = audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        assert warm.stats.fdd_constructions == 0
        assert warm.stats.fully_cached == warm.stats.policies
