"""CLI tests for ``repro audit`` fleet mode: flags, formats, exit codes."""

from __future__ import annotations

import json

from repro.cli import main
from tests.audit.conftest import BASELINE_STRICT, POLICY_OPEN


class TestArguments:
    def test_requires_policy_or_manifest(self, capsys):
        assert main(["audit"]) == 2
        assert "manifest" in capsys.readouterr().err.lower()

    def test_policy_and_manifest_are_mutually_exclusive(self, fleet, capsys):
        assert main(["audit", str(fleet / "core.fw"), "--manifest", str(fleet)]) == 2

    def test_missing_manifest_path(self, tmp_path, capsys):
        assert main(["audit", "--manifest", str(tmp_path / "ghost")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_bad_checks_spec(self, fleet, capsys):
        assert main(["audit", "--manifest", str(fleet), "--checks", "typo"]) == 2

    def test_legacy_single_policy_mode_still_works(self, fleet, capsys):
        assert main(["audit", str(fleet / "core.fw")]) == 0
        assert "# Policy health:" in capsys.readouterr().out


class TestFormats:
    def test_text_default(self, fleet, capsys):
        assert main(["audit", "--manifest", str(fleet)]) == 0
        out = capsys.readouterr().out
        assert "core.fw" in out and "fleet:" in out

    def test_json(self, fleet, capsys):
        assert main(["audit", "--manifest", str(fleet), "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert [p["name"] for p in document["policies"]] == [
            "core.fw",
            "team-a/edge.fw",
        ]

    def test_sarif_streams_valid_json(self, fleet, baseline, capsys):
        code = main(
            [
                "audit",
                "--manifest",
                str(fleet),
                "--baseline",
                str(baseline),
                "--format",
                "sarif",
                "--fail-on",
                "never",
            ]
        )
        assert code == 0
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        assert sarif["runs"][0]["tool"]["driver"]["name"] == "repro-audit"


class TestExitCodes:
    def test_divergence_alone_passes_fail_on_error(self, fleet, baseline):
        # edge.fw newly *blocks* traffic -- warning-grade, not error-grade.
        code = main(
            ["audit", "--manifest", str(fleet), "--baseline", str(baseline)]
        )
        assert code == 0

    def test_newly_allowed_fails_fail_on_error(self, tmp_path):
        root = tmp_path / "fleet"
        root.mkdir()
        (root / "open.fw").write_text(POLICY_OPEN)
        (tmp_path / "strict.fw").write_text(BASELINE_STRICT)
        code = main(
            [
                "audit",
                "--manifest",
                str(root),
                "--baseline",
                str(tmp_path / "strict.fw"),
            ]
        )
        assert code == 1

    def test_fail_on_divergence(self, fleet, baseline):
        code = main(
            [
                "audit",
                "--manifest",
                str(fleet),
                "--baseline",
                str(baseline),
                "--fail-on",
                "divergence",
            ]
        )
        assert code == 1

    def test_fail_on_never(self, tmp_path):
        root = tmp_path / "fleet"
        root.mkdir()
        (root / "open.fw").write_text(POLICY_OPEN)
        (tmp_path / "strict.fw").write_text(BASELINE_STRICT)
        code = main(
            [
                "audit",
                "--manifest",
                str(root),
                "--baseline",
                str(tmp_path / "strict.fw"),
                "--fail-on",
                "never",
            ]
        )
        assert code == 0

    def test_over_budget_exits_3(self, tmp_path):
        root = tmp_path / "fleet"
        root.mkdir()
        (root / "p.fw").write_text(BASELINE_STRICT)
        (root / "fleet.json").write_text(
            json.dumps(
                {
                    "tenants": {"default": {"max_nodes": 1}},
                    "policies": [{"path": "p.fw"}],
                }
            )
        )
        assert main(["audit", "--manifest", str(root / "fleet.json")]) == 3

    def test_unreadable_policy_exits_2(self, fleet):
        (fleet / "broken.fw").write_text("firewall schema=standard\nbogus\n")
        assert main(["audit", "--manifest", str(fleet)]) == 2


class TestCache:
    def test_cache_dir_round_trip(self, fleet, baseline, tmp_path, capsys):
        argv = [
            "audit",
            "--manifest",
            str(fleet),
            "--baseline",
            str(baseline),
            "--cache-dir",
            str(tmp_path / "cache"),
            "--format",
            "json",
        ]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["stats"]["fdd_constructions"] == 0
        assert warm["stats"]["fully_cached"] == 2
        # Diagnostic parity between the cold and warm documents.
        assert [p["stages"] for p in warm["policies"]] == [
            p["stages"] for p in cold["policies"]
        ]

    def test_explain_cache_reports_resolution(self, fleet, tmp_path, capsys):
        argv = [
            "audit",
            "--manifest",
            str(fleet),
            "--cache-dir",
            str(tmp_path / "cache"),
            "--explain-cache",
        ]
        assert main(argv) == 0
        cold_err = capsys.readouterr().err
        assert "# cache" in cold_err and "computed lint" in cold_err
        assert main(argv) == 0
        warm_err = capsys.readouterr().err
        assert "all stages served" in warm_err
        assert "0 FDD construction(s)" in warm_err

    def test_checks_selection(self, fleet, capsys):
        code = main(
            ["audit", "--manifest", str(fleet), "--checks", "lint=FW001", "--format", "json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        for policy in document["policies"]:
            assert policy["stages"]["lint"]["checks_run"] == ["FW001"]
            assert "compare" not in policy["stages"]
