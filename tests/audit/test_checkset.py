"""Check sets: spec parsing, versioned ids, invalidation semantics."""

from __future__ import annotations

import pytest

from repro.audit.checkset import (
    STAGE_VERSIONS,
    STAGES,
    AuditCheckSetError,
    CheckSet,
    resolve_checkset,
)
from repro.lint import all_checks


class TestResolve:
    @pytest.mark.parametrize("spec", [None, "all", "", "lint,simplify,compare,impact"])
    def test_default_enables_everything(self, spec):
        checkset = resolve_checkset(spec)
        assert checkset.stages == STAGES
        assert checkset.lint_codes == tuple(
            sorted(info.code for info in all_checks())
        )

    def test_lint_only(self):
        checkset = resolve_checkset("lint")
        assert checkset.stages == ("lint",)

    def test_lint_selection(self):
        checkset = resolve_checkset("lint=FW001+FW003,compare")
        assert checkset.stages == ("lint", "compare")
        assert checkset.lint_codes == ("FW001", "FW003")
        versions = dict(checkset.lint_checks)
        assert all(version >= 1 for version in versions.values())

    def test_selection_accepts_check_names(self):
        checkset = resolve_checkset("lint=shadowed-rule")
        assert checkset.lint_codes == ("FW001",)

    def test_stage_order_is_canonical(self):
        assert resolve_checkset("compare,lint").stages == ("lint", "compare")

    def test_unknown_stage_rejected(self):
        with pytest.raises(AuditCheckSetError, match="unknown audit stage"):
            resolve_checkset("lint,typo")

    def test_unknown_check_rejected(self):
        with pytest.raises(AuditCheckSetError, match="unknown check"):
            resolve_checkset("lint=FW999")

    def test_duplicate_stage_rejected(self):
        with pytest.raises(AuditCheckSetError, match="twice"):
            resolve_checkset("lint,lint")

    def test_impact_requires_compare(self):
        with pytest.raises(AuditCheckSetError, match="compare"):
            resolve_checkset("lint,impact")

    def test_selection_on_non_lint_stage_rejected(self):
        with pytest.raises(AuditCheckSetError, match="no check selection"):
            resolve_checkset("compare=FW001")


class TestIds:
    def test_id_is_stable(self):
        assert resolve_checkset().id == resolve_checkset("all").id

    def test_id_reflects_stage_selection(self):
        assert resolve_checkset("lint").id != resolve_checkset("all").id

    def test_id_reflects_lint_selection(self):
        assert resolve_checkset("lint").id != resolve_checkset("lint=FW001").id

    def test_check_version_bump_changes_ids(self):
        base = resolve_checkset("lint")
        bumped_checks = tuple(
            (code, version + 1 if code == "FW001" else version)
            for code, version in base.lint_checks
        )
        bumped = CheckSet(stages=base.stages, lint_checks=bumped_checks)
        assert bumped.id != base.id
        assert bumped.stage_id("lint") != base.stage_id("lint")

    def test_stage_id_isolated_from_other_stages(self):
        # Toggling compare/impact must not invalidate cached lint results.
        lint_only = resolve_checkset("lint")
        everything = resolve_checkset("all")
        assert lint_only.stage_id("lint") == everything.stage_id("lint")

    def test_stage_id_tracks_stage_version(self, monkeypatch):
        before = resolve_checkset("all").stage_id("compare")
        monkeypatch.setitem(STAGE_VERSIONS, "compare", STAGE_VERSIONS["compare"] + 1)
        after = resolve_checkset("all").stage_id("compare")
        assert before != after

    def test_stage_id_requires_enabled_stage(self):
        with pytest.raises(AuditCheckSetError, match="not enabled"):
            resolve_checkset("lint").stage_id("compare")

    def test_describe_is_json_ready(self):
        description = resolve_checkset("all").describe()
        assert description["stages"] == list(STAGES)
        assert set(description["lint_checks"]) == set(
            info.code for info in all_checks()
        )
        assert description["id"] == resolve_checkset("all").id
