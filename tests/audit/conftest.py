"""Shared fixtures for the fleet audit tests."""

from __future__ import annotations

from pathlib import Path

import pytest

POLICY_DIVERGED = """\
firewall "diverged" schema=standard
src_ip=10.0.0.0/8 -> discard
any -> accept
"""

POLICY_CLEAN = """\
firewall "clean" schema=standard
any -> accept
"""

#: Opens a hole relative to BASELINE_STRICT (newly-allowed traffic).
POLICY_OPEN = """\
firewall "open" schema=standard
any -> accept
"""

BASELINE_ACCEPT = """\
firewall "baseline" schema=standard
any -> accept
"""

BASELINE_STRICT = """\
firewall "strict" schema=standard
src_ip=10.0.0.0/8 -> discard
any -> accept
"""


@pytest.fixture
def fleet(tmp_path: Path) -> Path:
    """A two-tenant directory fleet plus a fleet-wide baseline file."""
    root = tmp_path / "fleet"
    (root / "team-a").mkdir(parents=True)
    (root / "team-a" / "edge.fw").write_text(POLICY_DIVERGED)
    (root / "core.fw").write_text(POLICY_CLEAN)
    (tmp_path / "baseline.fw").write_text(BASELINE_ACCEPT)
    return root


@pytest.fixture
def baseline(tmp_path: Path, fleet: Path) -> Path:
    return tmp_path / "baseline.fw"
