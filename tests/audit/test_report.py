"""Fleet report rendering: SARIF validity, streaming parity, JSON, text."""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.audit import (
    ResultCache,
    SarifAuditWriter,
    audit_fleet,
    load_manifest,
    render_audit_json,
    render_audit_sarif,
    render_audit_text,
)

SCHEMA_PATH = (
    Path(__file__).resolve().parent.parent / "lint" / "sarif-2.1.0-subset.schema.json"
)


@pytest.fixture
def report(fleet, baseline):
    return audit_fleet(load_manifest(fleet, baseline=str(baseline)))


class TestSarif:
    def test_document_shape(self, report):
        sarif = json.loads(render_audit_sarif(report))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-audit"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"AUDIT001", "AUDIT002", "AUDIT003", "AUDIT004"} <= rule_ids
        assert "FW001" in rule_ids, "lint catalog rides along"

    def test_schema_valid(self, report):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(SCHEMA_PATH.read_text())
        validator_cls = jsonschema.validators.validator_for(schema)
        validator_cls.check_schema(schema)
        sarif = json.loads(render_audit_sarif(report))
        errors = list(validator_cls(schema).iter_errors(sarif))
        assert not errors, "\n".join(e.message for e in errors)

    def test_divergence_results_present(self, report):
        sarif = json.loads(render_audit_sarif(report))
        results = sarif["runs"][0]["results"]
        by_rule: dict[str, int] = {}
        for result in results:
            by_rule[result["ruleId"]] = by_rule.get(result["ruleId"], 0) + 1
        assert by_rule.get("AUDIT001") == 1  # one diverged policy
        assert by_rule.get("AUDIT003", 0) >= 1  # its newly-blocked sample
        divergence = next(r for r in results if r["ruleId"] == "AUDIT001")
        assert divergence["level"] == "warning"
        assert divergence["partialFingerprints"]
        uri = divergence["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        assert uri.endswith("edge.fw")

    def test_artifacts_cover_every_policy(self, report):
        sarif = json.loads(render_audit_sarif(report))
        uris = [a["location"]["uri"] for a in sarif["runs"][0]["artifacts"]]
        assert len(uris) == 2
        assert any(uri.endswith("core.fw") for uri in uris)

    def test_streaming_writer_matches_batch_render(self, fleet, baseline):
        manifest = load_manifest(fleet, baseline=str(baseline))
        stream = io.StringIO()
        writer = SarifAuditWriter(stream)
        writer.begin()
        report = audit_fleet(manifest, on_result=writer.add)
        writer.finish(report)
        assert stream.getvalue() == render_audit_sarif(report)
        json.loads(stream.getvalue())  # and it is well-formed JSON

    def test_cold_and_warm_sarif_diagnostics_identical(
        self, fleet, baseline, tmp_path
    ):
        manifest = load_manifest(fleet, baseline=str(baseline))
        cold = audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        warm = audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        cold_run = json.loads(render_audit_sarif(cold))["runs"][0]
        warm_run = json.loads(render_audit_sarif(warm))["runs"][0]
        assert cold_run["results"] == warm_run["results"]
        assert cold_run["artifacts"] == warm_run["artifacts"]

    def test_failed_policy_becomes_tool_notification(self, fleet, baseline):
        (fleet / "broken.fw").write_text("firewall schema=standard\nbogus\n")
        report = audit_fleet(load_manifest(fleet, baseline=str(baseline)))
        sarif = json.loads(render_audit_sarif(report))
        notifications = sarif["runs"][0]["invocations"][0][
            "toolExecutionNotifications"
        ]
        assert len(notifications) == 1
        assert notifications[0]["level"] == "error"
        assert "broken.fw" in notifications[0]["message"]["text"]


class TestJson:
    def test_document_shape(self, report):
        document = json.loads(render_audit_json(report))
        assert document["tool"]["name"] == "repro-audit"
        assert len(document["policies"]) == 2
        assert document["summary"]["policies"] == 2
        assert document["checkset"]["stages"] == [
            "lint",
            "simplify",
            "compare",
            "impact",
        ]
        policy = next(
            p for p in document["policies"] if p["name"] == "team-a/edge.fw"
        )
        assert policy["stages"]["compare"]["equivalent"] is False
        assert policy["fingerprint"]

    def test_cache_stats_embedded_when_caching(self, fleet, baseline, tmp_path):
        manifest = load_manifest(fleet, baseline=str(baseline))
        report = audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        document = json.loads(render_audit_json(report))
        assert document["cache"]["stores"] > 0


class TestText:
    def test_mentions_policies_and_divergence(self, report):
        text = render_audit_text(report)
        assert "team-a/edge.fw" in text
        assert "core.fw" in text
        assert "1 diverged" in text
        assert "2 policies" in text

    def test_cached_marker_on_warm_run(self, fleet, baseline, tmp_path):
        manifest = load_manifest(fleet, baseline=str(baseline))
        audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        warm = audit_fleet(manifest, cache=ResultCache(tmp_path / "c"))
        assert "[cached]" in render_audit_text(warm)
