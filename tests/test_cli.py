"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.policy import dump
from repro.synth import team_a_firewall, team_b_firewall


@pytest.fixture
def policies(tmp_path):
    path_a = tmp_path / "a.fw"
    path_b = tmp_path / "b.fw"
    dump(team_a_firewall(), path_a, schema_key="interface")
    dump(team_b_firewall(), path_b, schema_key="interface")
    return str(path_a), str(path_b)


@pytest.fixture
def standard_policy(tmp_path):
    from repro.synth import SyntheticFirewallGenerator

    path = tmp_path / "p.fw"
    dump(SyntheticFirewallGenerator(seed=1).generate(10), path, schema_key="standard")
    return str(path)


class TestCompare:
    def test_discrepancies_exit_1(self, policies, capsys):
        code = main(["compare", *policies])
        out = capsys.readouterr().out
        assert code == 1
        assert "3 functional discrepancy region(s)" in out
        assert "Team A" in out and "Team B" in out

    def test_raw_mode(self, policies, capsys):
        code = main(["compare", "--raw", *policies])
        assert code == 1
        assert "discrepancy region(s)" in capsys.readouterr().out

    def test_equivalent_exit_0(self, policies, capsys):
        code = main(["compare", policies[0], policies[0]])
        assert code == 0
        assert "equivalent" in capsys.readouterr().out


class TestImpact:
    def test_reports_and_exits_1(self, policies, capsys):
        code = main(["impact", *policies])
        assert code == 1
        assert "change impact" in capsys.readouterr().out

    def test_noop_exits_0(self, policies, capsys):
        code = main(["impact", policies[1], policies[1]])
        assert code == 0
        assert "no semantic effect" in capsys.readouterr().out


class TestEquivalent:
    def test_yes(self, policies, capsys):
        assert main(["equivalent", policies[0], policies[0]]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_no(self, policies, capsys):
        assert main(["equivalent", *policies]) == 1
        assert "NOT equivalent" in capsys.readouterr().out


class TestJobs:
    """``--jobs N`` routes through the sharded parallel engine."""

    def test_compare_jobs_matches_serial_regions(self, policies, capsys):
        # Region *carving* may differ at shard boundaries (aggregation
        # sees different input cells), but the count, the headline, and
        # the disputed semantics must agree.
        serial_code = main(["compare", *policies])
        serial_out = capsys.readouterr().out
        parallel_code = main(["compare", "--jobs", "2", *policies])
        parallel_out = capsys.readouterr().out
        assert parallel_code == serial_code == 1
        assert "3 functional discrepancy region(s)" in serial_out
        assert "3 functional discrepancy region(s)" in parallel_out
        assert "Team A" in parallel_out and "Team B" in parallel_out

    def test_compare_jobs_equivalent_exit_0(self, policies, capsys):
        assert main(["compare", "--jobs", "2", policies[0], policies[0]]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_equivalent_jobs_exit_codes(self, policies, capsys):
        assert main(["equivalent", "--jobs", "2", *policies]) == 1
        assert "NOT equivalent" in capsys.readouterr().out
        assert main(["equivalent", "--jobs", "2", policies[0], policies[0]]) == 0

    def test_jobs_budget_trip_exits_3(self, policies, capsys):
        code = main(
            ["equivalent", "--jobs", "2", "--max-nodes", "5", *policies]
        )
        assert code == 3
        assert "budget exceeded" in capsys.readouterr().err

    def test_jobs_budget_trip_with_fallback_degrades(self, policies, capsys):
        code = main(
            [
                "equivalent",
                "--jobs",
                "2",
                "--max-nodes",
                "5",
                "--approx-fallback",
                *policies,
            ]
        )
        out = capsys.readouterr().out
        # Sampling either finds a witness (1) or proves nothing (4).
        assert code in (1, 4)
        assert "sampling" in out


class TestQuery:
    def test_count(self, policies, capsys):
        code = main(["query", policies[1], "count discard where interface=1"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "0"

    def test_bad_query_exits_2(self, policies, capsys):
        code = main(["query", policies[1], "ponder accept"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestQueryBatch:
    @pytest.fixture
    def packet_file(self, tmp_path):
        path = tmp_path / "packets.txt"
        path.write_text(
            "# src_ip dst_ip src_port dst_port protocol\n"
            "10.0.0.1, 192.168.0.1, 1024, smtp, tcp\n"
            "\n"
            "10.0.0.2 192.168.0.2 2048 80 udp\n",
            encoding="utf-8",
        )
        return str(path)

    def test_text_summary(self, standard_policy, packet_file, capsys):
        code = main(["query", standard_policy, "--batch", packet_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "classified 2 packet(s)" in out
        assert "matcher:" in out

    def test_json_summary(self, standard_policy, packet_file, capsys):
        import json

        code = main(
            ["query", standard_policy, "--batch", packet_file, "--format", "json"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["packets"] == 2
        assert sum(summary["counts"].values()) == 2
        assert summary["matcher"]["nodes"] >= 1

    def test_stdin_batch(self, standard_policy, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("10.0.0.1 192.168.0.1 1024 25 6\n")
        )
        code = main(["query", standard_policy, "--batch", "-"])
        assert code == 0
        assert "classified 1 packet(s)" in capsys.readouterr().out

    def test_jobs_matches_serial_counts(self, standard_policy, packet_file, capsys):
        import json

        main(["query", standard_policy, "--batch", packet_file, "--format", "json"])
        serial = json.loads(capsys.readouterr().out)["counts"]
        code = main(
            [
                "query",
                standard_policy,
                "--batch",
                packet_file,
                "--jobs",
                "2",
                "--format",
                "json",
            ]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["counts"] == serial

    def test_wrong_arity_exits_2(self, standard_policy, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3\n", encoding="utf-8")
        code = main(["query", standard_policy, "--batch", str(path)])
        assert code == 2
        assert "expected 5 field value(s)" in capsys.readouterr().err

    def test_range_token_exits_2(self, standard_policy, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("10.0.0.1 192.168.0.1 1024-2048 25 6\n", encoding="utf-8")
        code = main(["query", standard_policy, "--batch", str(path)])
        assert code == 2
        assert "need exactly one" in capsys.readouterr().err

    def test_no_text_and_no_batch_exits_2(self, standard_policy, capsys):
        code = main(["query", standard_policy])
        assert code == 2
        assert "provide a query string or --batch" in capsys.readouterr().err


class TestServeBench:
    def test_smoke_with_json_report(self, standard_policy, tmp_path, capsys):
        import json

        report_path = tmp_path / "serve.json"
        code = main(
            [
                "serve-bench",
                standard_policy,
                standard_policy,
                "--packets",
                "256",
                "--json",
                str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cache:" in out
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert len(report["policies"]) == 2
        # The same policy loaded twice costs one compile (content hit).
        assert report["cache"]["compiles"] == 1
        assert report["cache"]["hits"] >= 1
        fingerprints = {row["fingerprint"] for row in report["policies"]}
        assert len(fingerprints) == 1

    def test_budget_trip_exits_3(self, standard_policy, capsys):
        code = main(
            ["serve-bench", standard_policy, "--packets", "64", "--max-nodes", "1"]
        )
        assert code == 3
        assert "budget" in capsys.readouterr().err.lower()


class TestCompact:
    def test_prints_slimmed_policy(self, tmp_path, capsys):
        from repro.fields import standard_schema
        from repro.policy import ACCEPT, DISCARD, Firewall, Rule, dumps

        schema = standard_schema()
        fat = Firewall(
            schema,
            [
                Rule.build(schema, ACCEPT, dst_port="0-1023"),
                Rule.build(schema, ACCEPT, dst_port="80-443"),
                Rule.build(schema, DISCARD),
            ],
        )
        path = tmp_path / "fat.fw"
        path.write_text(dumps(fat, schema_key="standard"))
        code = main(["compact", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "removed 1 redundant rule(s): 3 -> 2" in out


class TestExportShow:
    def test_export_iptables(self, standard_policy, capsys):
        assert main(["export", standard_policy, "--format", "iptables"]) == 0
        assert "*filter" in capsys.readouterr().out

    def test_export_cisco(self, standard_policy, capsys):
        assert main(["export", standard_policy, "--format", "cisco"]) == 0
        assert "ip access-list extended" in capsys.readouterr().out

    def test_export_text_roundtrip(self, standard_policy, capsys):
        assert main(["export", standard_policy]) == 0
        out = capsys.readouterr().out
        from repro.fields import standard_schema
        from repro.policy import loads

        assert loads(out, standard_schema())

    def test_show(self, standard_policy, capsys):
        assert main(["show", standard_policy]) == 0
        assert "decision" in capsys.readouterr().out

    def test_anomalies(self, standard_policy, capsys):
        assert main(["anomalies", standard_policy]) == 0


class TestFingerprintSliceImport:
    def test_fingerprint_stable_and_semantic(self, policies, capsys):
        assert main(["fingerprint", policies[0]]) == 0
        first = capsys.readouterr().out.strip()
        assert main(["fingerprint", policies[0]]) == 0
        second = capsys.readouterr().out.strip()
        assert first == second and len(first) == 64
        assert main(["fingerprint", policies[1]]) == 0
        other = capsys.readouterr().out.strip()
        assert other != first

    def test_slice(self, standard_policy, capsys):
        code = main(["slice", standard_policy, "dst_port=80|443"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("# rules deciding the region:")
        assert "decision" in out

    def test_import_iptables(self, tmp_path, capsys):
        config = tmp_path / "rules.v4"
        config.write_text(
            ":FORWARD DROP [0:0]\n-A FORWARD -s 10.0.0.0/8 -j ACCEPT\n"
        )
        code = main(
            ["import", str(config), "--format", "iptables", "--schema-header"]
        )
        out = capsys.readouterr().out
        assert code == 0
        from repro.policy import loads

        imported = loads(out)
        assert len(imported) == 2

    def test_import_cisco(self, tmp_path, capsys):
        config = tmp_path / "acl.cfg"
        config.write_text(
            "ip access-list extended X\n permit tcp any any eq 80\n"
        )
        code = main(["import", str(config), "--format", "cisco"])
        assert code == 0
        assert "-> accept" in capsys.readouterr().out

    def test_import_nftables(self, tmp_path, capsys):
        config = tmp_path / "ruleset.nft"
        config.write_text(
            "table inet filter {\n"
            "\tchain forward {\n"
            "\t\ttype filter hook forward priority 0; policy drop;\n"
            "\t\tip saddr 10.0.0.0/8 accept\n"
            "\t}\n"
            "}\n"
        )
        code = main(
            ["import", str(config), "--format", "nftables", "--schema-header"]
        )
        out = capsys.readouterr().out
        assert code == 0
        from repro.policy import loads

        assert len(loads(out)) == 2


class TestSimplify:
    def test_shrinks_and_verifies(self, tmp_path, capsys):
        config = tmp_path / "rules.v4"
        config.write_text(
            ":FORWARD DROP [0:0]\n"
            "-A FORWARD -s 10.0.0.0/8 -j ACCEPT\n"
            "-A FORWARD -s 10.9.0.0/16 -j ACCEPT\n"
        )
        code = main(
            ["simplify", str(config), "--from", "iptables", "--to", "nftables"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "table inet filter" in captured.out
        assert "3 -> 2 rule(s)" in captured.err
        assert "verified" in captured.err

    def test_stats_json(self, tmp_path, capsys):
        import json

        config = tmp_path / "rules.v4"
        config.write_text(
            ":FORWARD DROP [0:0]\n-A FORWARD -s 10.0.0.0/8 -j ACCEPT\n"
        )
        stats = tmp_path / "stats.json"
        code = main(
            [
                "simplify",
                str(config),
                "--from",
                "iptables",
                "--stats-json",
                str(stats),
            ]
        )
        capsys.readouterr()
        assert code == 0
        document = json.loads(stats.read_text())
        assert document["rules_after"] <= document["rules_before"]
        assert len(document["fingerprint"]) == 64

    def test_default_dialect_is_native(self, standard_policy, capsys):
        code = main(["simplify", standard_policy])
        out = capsys.readouterr().out
        assert code == 0
        from repro.policy import loads

        assert loads(out)

    def test_lint_on_imported_dialect_points_at_dump_lines(
        self, tmp_path, capsys
    ):
        # Satellite: `repro lint --dialect iptables` anchors findings to
        # the original dump's line numbers via IR provenance.
        config = tmp_path / "rules.v4"
        config.write_text(
            ":FORWARD DROP [0:0]\n"
            "-A FORWARD -s 10.0.0.0/8 -j ACCEPT\n"
            "-A FORWARD -s 10.9.0.0/16 -j ACCEPT\n"
        )
        code = main(["lint", str(config), "--dialect", "iptables"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert ":3:" in out, "finding should cite the shadowed rule's dump line"


class TestErrors:
    def test_missing_file_exits_2(self, capsys):
        code = main(["show", "/nonexistent/path.fw"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_parse_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.fw"
        bad.write_text("firewall schema=standard\nnot a rule\n")
        assert main(["show", str(bad)]) == 2

    def test_no_command_raises_system_exit(self):
        with pytest.raises(SystemExit):
            main([])
