"""Integration: a whole diverse-design engagement driven through the CLI.

Simulates how two teams would actually use the tool: policies live in
files, the comparison gates deployment (exit codes), the audit report
lands in the change ticket, and the final policy exports to the device.
"""

import pytest

from repro.cli import main
from repro.policy import dump, dumps, loads
from repro.synth import (
    paper_resolution_chooser,
    resolved_reference_firewall,
    team_a_firewall,
    team_b_firewall,
)


@pytest.fixture
def workspace(tmp_path):
    dump(team_a_firewall(), tmp_path / "team_a.fw", schema_key="interface")
    dump(team_b_firewall(), tmp_path / "team_b.fw", schema_key="interface")
    return tmp_path


class TestEngagement:
    def test_full_cycle(self, workspace, capsys):
        a = str(workspace / "team_a.fw")
        b = str(workspace / "team_b.fw")

        # 1. Gate: the two designs disagree -> non-zero exit for CI.
        assert main(["compare", a, b]) == 1
        table = capsys.readouterr().out
        assert "functional discrepancy region(s)" in table

        # 2. The teams resolve (library call; the chooser is the meeting).
        from repro import compare_firewalls, resolve_by_corrected_fdd, resolve_with

        team_a = team_a_firewall()
        team_b = team_b_firewall()
        raw = compare_firewalls(team_a, team_b)
        final = resolve_by_corrected_fdd(
            team_a, team_b, resolve_with(raw, paper_resolution_chooser)
        )
        final_path = workspace / "final.fw"
        final_path.write_text(dumps(final, schema_key="interface"))

        # 3. Verify: the final policy equals the agreed reference.
        ref_path = workspace / "reference.fw"
        dump(resolved_reference_firewall(), ref_path, schema_key="interface")
        assert main(["equivalent", str(final_path), str(ref_path)]) == 0
        capsys.readouterr()

        # 4. Audit report for the ticket: each team's delta to the final.
        assert main(["audit", a, str(final_path)]) == 0
        report = capsys.readouterr().out
        assert "# Policy change audit" in report
        assert "semantics changed" in report

        # 5. The final policy's fingerprint pins the deployed artifact.
        assert main(["fingerprint", str(final_path)]) == 0
        fingerprint = capsys.readouterr().out.strip()
        assert main(["fingerprint", str(ref_path)]) == 0
        assert capsys.readouterr().out.strip() == fingerprint

    def test_change_gate_blocks_bad_edit(self, workspace, capsys):
        """An 'emergency' edit is caught by the impact gate before deploy."""
        b = workspace / "team_b.fw"
        deployed = loads(b.read_text())
        from repro.policy import ACCEPT, Rule

        careless = deployed.prepend(
            Rule.build(deployed.schema, ACCEPT, "oops", interface=0)
        )
        after = workspace / "after.fw"
        after.write_text(dumps(careless, schema_key="interface"))
        assert main(["impact", str(b), str(after)]) == 1
        out = capsys.readouterr().out
        assert "newly allowed" in out

    def test_audit_single_policy(self, workspace, capsys):
        assert main(["audit", str(workspace / "team_b.fw")]) == 0
        out = capsys.readouterr().out
        assert "# Policy health" in out
