"""Integration tests: full workflows across modules, realistic schemas."""

from repro import (
    ACCEPT,
    DISCARD,
    DiverseDesignSession,
    aggregate_discrepancies,
    analyze_change,
    compare_firewalls,
    equivalent,
)
from repro.analysis import remove_redundant_rules
from repro.fdd import construct_fdd, generate_firewall, reduce_fdd
from repro.fdd.fast import compare_fast
from repro.fields import PacketSampler
from repro.policy import dumps, loads
from repro.synth import (
    SyntheticFirewallGenerator,
    campus_87,
    paper_resolution_chooser,
    perturb,
    team_a_firewall,
    team_b_firewall,
)


class TestDiverseDesignEndToEnd:
    def test_paper_workflow(self):
        """Design -> compare -> resolve, as a session, on the paper example."""
        session = DiverseDesignSession([team_a_firewall(), team_b_firewall()])
        assert not session.unanimous()
        assert len(session.discrepancies()) == 3
        final = session.resolve(paper_resolution_chooser)
        from repro.synth import resolved_reference_firewall

        assert equivalent(final, resolved_reference_firewall())

    def test_three_team_workflow(self):
        base = campus_87()
        v2, _ = perturb(base, 0.05, seed=21, y=1.0)
        v3, _ = perturb(base, 0.05, seed=22, y=1.0)
        session = DiverseDesignSession([base, v2, v3])
        multi = session.multi_discrepancies()
        # Majority voting resolves every region (base + one perturbed copy
        # outvote the other copy unless both flipped the same packets).
        for region in multi:
            winner = session.quorum_decision(region)
            assert winner in region.decisions


class TestChangeImpactEndToEnd:
    def test_admin_edit_cycle(self):
        """An admin inserts a block rule at the top; impact must show only
        the intended traffic blocked, then the rollback is a noop."""
        from repro.fields import standard_schema
        from repro.policy import Rule

        schema = standard_schema()
        before = campus_87()
        block = Rule.build(
            schema,
            DISCARD,
            "emergency: block new worm source",
            src_ip="203.0.113.0/24",
        )
        after = before.prepend(block).with_name("campus-88")
        report = analyze_change(before, after)
        assert not report.is_noop
        kinds = report.by_kind()
        # Only newly-blocked traffic, all from the blocked /24.
        assert not kinds["newly allowed"]
        blocked = kinds["newly blocked"]
        assert blocked
        from repro.addr import ip_to_int

        lo = ip_to_int("203.0.113.0")
        hi = ip_to_int("203.0.113.255")
        for disc in blocked:
            assert disc.sets[0].min() >= lo and disc.sets[0].max() <= hi
        # Rolling back restores equivalence.
        rollback = after.remove(0)
        assert analyze_change(before, rollback).is_noop

    def test_unintended_side_effect_detected(self):
        """The Section 8.1 failure mode: adding a broad rule at the top
        silently re-decides packets of later rules."""
        base = campus_87()
        from repro.fields import standard_schema
        from repro.policy import Rule

        careless = Rule.build(
            standard_schema(), ACCEPT, "careless: open all of 10.1.0.0/16",
            dst_ip="10.1.0.0/16",
        )
        after = base.prepend(careless)
        report = analyze_change(base, after)
        newly_allowed = report.by_kind()["newly allowed"]
        assert newly_allowed, "the careless rule must surface as newly-allowed traffic"


class TestRegenerationCycle:
    def test_construct_reduce_generate_roundtrip_on_campus(self):
        firewall = campus_87()
        fdd = reduce_fdd(construct_fdd(firewall))
        regenerated = generate_firewall(fdd, reduce=False, compact=False)
        assert equivalent(regenerated, firewall)

    def test_serialize_compare_cycle(self):
        firewall = SyntheticFirewallGenerator(seed=31).generate(40)
        text = dumps(firewall, schema_key="standard")
        reparsed = loads(text)
        assert not compare_firewalls(firewall, reparsed)

    def test_redundancy_removal_on_generated_policy(self):
        generator = SyntheticFirewallGenerator(seed=33)
        firewall = generator.generate(25)
        slim = remove_redundant_rules(firewall)
        assert equivalent(slim, firewall)
        assert len(slim) <= len(firewall)


class TestEngineAgreementAtScale:
    def test_reference_vs_fast_on_perturbed_campus(self):
        base = campus_87()
        other, _ = perturb(base, 0.15, seed=41)
        reference = compare_firewalls(base, other)
        fast = compare_fast(base, other)
        assert sum(d.size() for d in reference) == fast.disputed_packet_count()

    def test_sampled_probing_of_discrepancies(self):
        base = campus_87()
        other, _ = perturb(base, 0.15, seed=43)
        discs = aggregate_discrepancies(compare_firewalls(base, other))
        sampler = PacketSampler(base.schema, seed=43)
        for disc in discs[:20]:
            packet = sampler.from_region(disc.sets)
            assert base(packet) == disc.decision_a
            assert other(packet) == disc.decision_b
        # And packets outside every region agree.
        for _ in range(50):
            packet = sampler.uniform()
            if not any(d.contains(packet) for d in discs):
                assert base(packet) == other(packet)
