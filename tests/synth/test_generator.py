"""Tests for the synthetic firewall generator ([13]-style mix)."""

import pytest

from repro.addr import IPV4_MAX, PORT_MAX
from repro.intervals import IntervalSet
from repro.synth import (
    GeneratorConfig,
    SyntheticFirewallGenerator,
    generate_firewall_pair,
)


class TestGenerator:
    def test_size_and_catchall(self):
        fw = SyntheticFirewallGenerator(seed=1).generate(50)
        assert len(fw) == 50
        assert fw.has_catchall()
        assert fw.rules[-1].comment == "default"

    def test_deterministic(self):
        a = SyntheticFirewallGenerator(seed=7).generate(30)
        b = SyntheticFirewallGenerator(seed=7).generate(30)
        assert a.rules == b.rules

    def test_different_seeds_differ(self):
        a = SyntheticFirewallGenerator(seed=7).generate(30)
        b = SyntheticFirewallGenerator(seed=8).generate(30)
        assert a.rules != b.rules

    def test_minimum_size(self):
        fw = SyntheticFirewallGenerator(seed=1).generate(1)
        assert len(fw) == 1 and fw.has_catchall()
        with pytest.raises(ValueError):
            SyntheticFirewallGenerator(seed=1).generate(0)

    def test_rule_shape_statistics(self):
        """The configured mix must actually show up in the rules."""
        config = GeneratorConfig()
        fw = SyntheticFirewallGenerator(config, seed=3).generate(400)
        src_port_wild = 0
        protocols = {"tcp": 0, "udp": 0, "any": 0}
        for rule in fw.rules[:-1]:
            sets = rule.predicate.sets
            if sets[2] == IntervalSet.span(0, PORT_MAX):
                src_port_wild += 1
            proto = sets[4]
            if proto == IntervalSet.single(6):
                protocols["tcp"] += 1
            elif proto == IntervalSet.single(17):
                protocols["udp"] += 1
            else:
                protocols["any"] += 1
        total = len(fw) - 1
        # Loose two-sided checks around the configured probabilities.
        assert src_port_wild / total > 0.8
        assert protocols["tcp"] / total > 0.5
        assert protocols["udp"] > 0

    def test_ip_fields_are_prefix_shaped(self):
        fw = SyntheticFirewallGenerator(seed=5).generate(200)
        for rule in fw.rules[:-1]:
            for field_index in (0, 1):
                values = rule.predicate.sets[field_index]
                assert values.is_single_interval()
                iv = values.intervals[0]
                size = len(iv)
                assert size & (size - 1) == 0, "IP ranges must be power-of-two blocks"

    def test_pool_concentration(self):
        """Rules reuse a bounded set of networks (the [13] observation)."""
        config = GeneratorConfig(network_pool_size=8)
        fw = SyntheticFirewallGenerator(config, seed=5).generate(300)
        distinct_src = {
            rule.predicate.sets[0]
            for rule in fw.rules[:-1]
            if rule.predicate.sets[0] != IntervalSet.span(0, IPV4_MAX)
        }
        # 8 networks x (block + a few hosts) stays far below 300.
        assert len(distinct_src) <= 8 * (1 + config.hosts_per_network)


class TestPair:
    def test_pair_shares_pools_not_rules(self):
        fw_a, fw_b = generate_firewall_pair(60, seed=2)
        assert fw_a.rules != fw_b.rules
        non_wild_a = {
            rule.predicate.sets[1].intervals[0]
            for rule in fw_a.rules[:-1]
            if not rule.predicate.sets[1].is_single_interval()
            or rule.predicate.sets[1].count() <= (1 << 24)
        }
        non_wild_b = {
            rule.predicate.sets[1].intervals[0]
            for rule in fw_b.rules[:-1]
            if not rule.predicate.sets[1].is_single_interval()
            or rule.predicate.sets[1].count() <= (1 << 24)
        }
        # Shared address pools: the two firewalls talk about overlapping
        # destinations.
        assert non_wild_a & non_wild_b

    def test_pair_deterministic(self):
        first = generate_firewall_pair(40, seed=9)
        second = generate_firewall_pair(40, seed=9)
        assert first[0].rules == second[0].rules
        assert first[1].rules == second[1].rules
