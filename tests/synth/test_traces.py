"""Tests for synthetic packet traces."""

from repro.fields import standard_schema
from repro.synth import (
    BoundaryTraceGenerator,
    FlowTraceGenerator,
    SyntheticFirewallGenerator,
    perturb,
)


class TestBoundaryTraces:
    def test_packets_in_domain(self):
        fw = SyntheticFirewallGenerator(seed=1).generate(20)
        gen = BoundaryTraceGenerator(fw, seed=2)
        for packet in gen.packets(200):
            for value, field in zip(packet, fw.schema):
                assert 0 <= value <= field.max_value

    def test_deterministic(self):
        fw = SyntheticFirewallGenerator(seed=1).generate(20)
        assert (
            BoundaryTraceGenerator(fw, seed=5).packets(50)
            == BoundaryTraceGenerator(fw, seed=5).packets(50)
        )

    def test_boundary_bias_hits_rule_edges(self):
        fw = SyntheticFirewallGenerator(seed=3).generate(30)
        gen = BoundaryTraceGenerator(fw, seed=4, uniform_p=0.0)
        endpoints = set()
        for rule in fw.rules:
            for iv in rule.predicate.sets[1].intervals:
                endpoints.update((iv.lo, iv.hi, iv.lo - 1, iv.hi + 1))
        hits = sum(1 for p in gen.packets(200) if p[1] in endpoints)
        assert hits == 200  # with uniform_p=0 every draw is a pool value

    def test_differential_finds_real_disagreements(self):
        fw = SyntheticFirewallGenerator(seed=6).generate(30)
        other, record = perturb(fw, 0.4, seed=7, y=1.0)
        gen = BoundaryTraceGenerator(fw, seed=8)
        witnesses = gen.differential(fw, other, 2000)
        for packet in witnesses:
            assert fw(packet) != other(packet)
        # With 12 flipped rules, boundary probing should find something.
        assert witnesses

    def test_uniform_fallback_on_empty_pools(self):
        # A catch-all-only policy has pools of just domain endpoints.
        from repro.policy import ACCEPT, Firewall, Rule

        schema = standard_schema()
        fw = Firewall(schema, [Rule.build(schema, ACCEPT)])
        gen = BoundaryTraceGenerator(fw, seed=9)
        assert len(gen.packets(10)) == 10


class TestFlowTraces:
    def test_time_ordering(self):
        trace = list(FlowTraceGenerator(seed=1).flows(10))
        times = [tp.time for tp in trace]
        assert times == sorted(times)

    def test_flow_structure(self):
        gen = FlowTraceGenerator(seed=2, requests_per_flow=2, reply_probability=1.0)
        trace = list(gen.flows(1))
        assert len(trace) == 4  # 2 requests + 2 replies
        request, reply = trace[0].packet, trace[1].packet
        assert request[0] == reply[1] and request[1] == reply[0]
        assert request[2] == reply[3] and request[3] == reply[2]

    def test_clients_in_space(self):
        gen = FlowTraceGenerator(seed=3)
        lo, hi = gen.client_space
        for tp in gen.flows(5):
            src, dst = tp.packet[0], tp.packet[1]
            assert lo <= src <= hi or lo <= dst <= hi

    def test_scanner_interleaved(self):
        gen = FlowTraceGenerator(seed=4)
        scanner_ip = 0xCB007142
        trace = list(gen.with_scanner(10, scanner_ip=scanner_ip))
        scans = [tp for tp in trace if tp.packet[0] == scanner_ip]
        assert scans
        times = [tp.time for tp in trace]
        assert times == sorted(times)

    def test_stateful_gateway_on_trace(self):
        """End-to-end: flows pass, the interleaved scan is dropped."""
        from repro.policy import ACCEPT, DISCARD, Firewall, Predicate, Rule
        from repro.stateful import (
            STATE_ESTABLISHED,
            StatefulFirewall,
            stateful_schema,
        )

        schema = stateful_schema()
        policy = Firewall(
            schema,
            [
                Rule.build(schema, ACCEPT, state=STATE_ESTABLISHED),
                Rule.build(schema, ACCEPT, src_ip="10.0.0.0/8"),
                Rule.build(schema, DISCARD),
            ],
        )
        fw = StatefulFirewall(
            policy, tracking=[Predicate.from_fields(schema, src_ip="10.0.0.0/8")]
        )
        gen = FlowTraceGenerator(seed=5, reply_probability=1.0)
        scanner_ip = 0xCB007142
        decisions = {}
        for tp in gen.with_scanner(10, scanner_ip=scanner_ip):
            decision = fw.process(tp.packet, tp.time)
            decisions.setdefault(tp.packet[0] == scanner_ip, []).append(decision)
        assert all(d == DISCARD for d in decisions[True])  # scans dropped
        assert all(d == ACCEPT for d in decisions[False])  # flows pass
