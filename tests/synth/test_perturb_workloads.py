"""Tests for the Fig. 12 perturbation model and the canned workloads."""

import pytest

from repro.analysis import equivalent
from repro.fdd import compare_firewalls
from repro.policy import ACCEPT, DISCARD
from repro.synth import (
    SyntheticFirewallGenerator,
    average_42,
    campus_87,
    flip_decision,
    perturb,
    team_a_firewall,
    team_b_firewall,
    university_661,
)


class TestFlipDecision:
    def test_flip(self):
        assert flip_decision(ACCEPT) == DISCARD
        assert flip_decision(DISCARD) == ACCEPT

    def test_flip_log_variants(self):
        from repro.policy import ACCEPT_LOG, DISCARD_LOG

        assert not flip_decision(ACCEPT_LOG).permits
        assert flip_decision(DISCARD_LOG).permits


class TestPerturb:
    @pytest.fixture
    def firewall(self):
        return SyntheticFirewallGenerator(seed=4).generate(40)

    def test_selection_count(self, firewall):
        _, record = perturb(firewall, 0.25, seed=1, y=1.0)  # flip all selected
        assert len(record.flipped) == 10
        assert record.deleted == ()

    def test_delete_all_selected(self, firewall):
        perturbed, record = perturb(firewall, 0.25, seed=1, y=0.0)
        assert record.flipped == ()
        assert len(perturbed) == 40 - len(record.deleted)
        # The catch-all survives deletion.
        assert perturbed.has_catchall()

    def test_flips_applied(self, firewall):
        perturbed, record = perturb(firewall, 0.5, seed=2, y=1.0)
        for index in record.flipped:
            assert perturbed[
                index - sum(1 for d in record.deleted if d < index)
            ].decision == flip_decision(firewall[index].decision)

    def test_x_validation(self, firewall):
        with pytest.raises(ValueError):
            perturb(firewall, 0.0)
        with pytest.raises(ValueError):
            perturb(firewall, 1.5)
        with pytest.raises(ValueError):
            perturb(firewall, 0.5, y=2.0)

    def test_deterministic(self, firewall):
        a = perturb(firewall, 0.3, seed=11)
        b = perturb(firewall, 0.3, seed=11)
        assert a[0].rules == b[0].rules and a[1] == b[1]

    def test_comparator_sees_flips(self, firewall):
        """Every surviving decision flip must surface as a discrepancy
        (unless the flipped rule was shadowed)."""
        perturbed, record = perturb(firewall, 0.2, seed=3, y=1.0)
        discs = compare_firewalls(firewall, perturbed)
        for index in record.flipped:
            rule = firewall[index]
            # A packet that reaches this rule (if any) must be disputed.
            witness = tuple(v.min() for v in rule.predicate.sets)
            if firewall.first_match_index(witness) == index:
                assert any(d.contains(witness) for d in discs)


class TestWorkloads:
    def test_sizes(self):
        assert len(university_661()) == 661
        assert len(average_42()) == 42
        assert len(campus_87()) == 87

    def test_campus_rules_documented(self):
        fw = campus_87()
        assert all(rule.comment for rule in fw.rules)
        assert fw.has_catchall()

    def test_campus_semantics_spotcheck(self):
        from repro.addr import ip_to_int

        fw = campus_87()
        web = ip_to_int("10.1.0.10")
        outside = ip_to_int("198.51.100.7")
        dmz_other = ip_to_int("10.1.0.200")
        campus_host = ip_to_int("10.2.0.5")
        # Outside can reach the web server on 443/tcp...
        assert fw((outside, web, 40000, 443, 6)) == ACCEPT
        # ...but not on arbitrary ports (DMZ default-deny).
        assert fw((outside, web, 40000, 4444, 6)) == DISCARD
        assert fw((outside, dmz_other, 40000, 80, 6)) == DISCARD
        # Department subnet reaches DMZ over ssh.
        assert fw((campus_host, dmz_other, 40000, 22, 6)) == ACCEPT
        # Campus egress is open; everything else defaults to deny.
        assert fw((campus_host, outside, 40000, 9999, 17)) == ACCEPT
        assert fw((outside, outside + 1, 40000, 9999, 17)) == DISCARD

    def test_paper_teams_not_equivalent(self):
        assert not equivalent(team_a_firewall(), team_b_firewall())

    def test_workloads_deterministic(self):
        assert campus_87().rules == campus_87().rules
        assert university_661().rules == university_661().rules
