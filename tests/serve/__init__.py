"""Tests for the fingerprint-keyed serving layer."""
