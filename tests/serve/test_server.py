"""PolicyServer: content-addressed sharing, LRU bounds, budgets."""

import pytest

from repro.exceptions import BudgetExceededError
from repro.fields import PacketSampler, toy_schema
from repro.guard import Budget
from repro.policy import ACCEPT, DISCARD, Firewall, Rule
from repro.serve import PolicyServer
from repro.synth import SyntheticFirewallGenerator


@pytest.fixture
def schema():
    return toy_schema(9, 9)


@pytest.fixture
def twin_policies(schema):
    """Two syntactically different, semantically identical policies."""
    one = Firewall(
        schema,
        [Rule.build(schema, ACCEPT, F1=(0, 3)), Rule.build(schema, DISCARD)],
    )
    two = Firewall(
        schema,
        [Rule.build(schema, DISCARD, F1=(4, 9)), Rule.build(schema, ACCEPT)],
    )
    return one, two


def _distinct_policies(schema, count):
    out = []
    for i in range(count):
        out.append(
            Firewall(
                schema,
                [
                    Rule.build(schema, ACCEPT, F1=(0, i)),
                    Rule.build(schema, DISCARD),
                ],
            )
        )
    return out


class TestContentAddressing:
    def test_semantic_twins_share_one_artifact(self, twin_policies):
        server = PolicyServer()
        fp_a = server.load(twin_policies[0], name="a")
        fp_b = server.load(twin_policies[1], name="b")
        assert fp_a == fp_b
        assert server.matcher("a") is server.matcher("b")
        assert server.stats()["compiles"] == 1

    def test_lookup_by_name_or_fingerprint(self, twin_policies):
        server = PolicyServer()
        fingerprint = server.load(twin_policies[0], name="a")
        assert server.matcher(fingerprint) is server.matcher("a")

    def test_unknown_key_raises(self):
        server = PolicyServer()
        with pytest.raises(KeyError, match="no policy loaded"):
            server.matcher("nope")

    def test_distinct_policies_get_distinct_artifacts(self, schema):
        server = PolicyServer()
        first, second = _distinct_policies(schema, 2)
        assert server.load(first) != server.load(second)
        assert server.stats()["compiles"] == 2


class TestEviction:
    def test_lru_evicts_and_recompiles(self, schema):
        server = PolicyServer(capacity=1)
        policies = _distinct_policies(schema, 3)
        fingerprints = [server.load(p) for p in policies]
        stats = server.stats()
        assert stats["artifacts"] == 1
        assert stats["evictions"] == 2
        assert server.cached_fingerprints() == (fingerprints[-1],)
        # The evicted policy is still servable: recompiled on demand.
        before = server.stats()["compiles"]
        matcher = server.matcher(fingerprints[0])
        assert server.stats()["compiles"] == before + 1
        assert matcher.classify((0, 0)) == ACCEPT

    def test_eviction_never_loses_registrations(self, schema):
        server = PolicyServer(capacity=1)
        policies = _distinct_policies(schema, 3)
        for i, policy in enumerate(policies):
            server.load(policy, name=f"p{i}")
        assert set(server.names) == {"p0", "p1", "p2"}
        assert len(server.fingerprints) == 3


class TestCounters:
    def test_hit_and_miss_accounting(self, twin_policies):
        server = PolicyServer()
        server.load(twin_policies[0], name="a")  # miss + compile
        server.load(twin_policies[1], name="b")  # hit (same fingerprint)
        server.matcher("a")  # hit
        stats = server.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert stats["compiles"] == 1
        assert stats["size_bytes"] > 0

    def test_repr_summarizes(self, twin_policies):
        server = PolicyServer()
        server.load(twin_policies[0])
        assert "artifacts" in repr(server)


class TestBudget:
    def test_budget_trip_leaves_cache_untouched(self):
        firewall = SyntheticFirewallGenerator(seed=3).generate(50)
        server = PolicyServer(budget=Budget(max_nodes=2))
        with pytest.raises(BudgetExceededError):
            server.load(firewall)
        assert server.stats()["artifacts"] == 0

    def test_budget_is_per_operation_not_cumulative(self, schema):
        server = PolicyServer(budget=Budget(max_nodes=10_000))
        for policy in _distinct_policies(schema, 4):
            server.load(policy)
        assert server.stats()["artifacts"] == 4


class TestClassification:
    def test_classify_paths_agree_with_firewall(self, twin_policies):
        server = PolicyServer()
        server.load(twin_policies[0], name="a")
        packets = PacketSampler(twin_policies[0].schema, seed=9).uniform_many(100)
        expected = [twin_policies[0].evaluate(p) for p in packets]
        assert server.classify_batch("a", packets) == expected
        assert server.classify("a", packets[0]) == expected[0]
        tally = server.tally("a", packets)
        assert sum(tally.values()) == len(packets)

    def test_classify_batch_with_jobs_inline_parity(self, twin_policies):
        server = PolicyServer()
        server.load(twin_policies[0], name="a")
        packets = PacketSampler(twin_policies[0].schema, seed=9).uniform_many(50)
        serial = server.classify_batch("a", packets)
        assert server.classify_batch("a", packets, jobs=2) == serial
