"""Tests for the cross-process chaos harness (:mod:`repro.chaos`).

The acceptance property of the whole robustness layer: with workers
SIGKILLed mid-shard, hung past their deadlines, raising at armed guard
sites, or returning corrupted envelopes, the supervised parallel engine
still produces a report *byte-identical* to the serial baseline — by
retry when possible, by recorded degradation when not — and ``jobs=1``
behavior is completely unchanged.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos import (
    ChaosAction,
    ChaosPlan,
    make_firewall,
    prepare_task,
    run_scenario,
    run_suite,
    scenario_catalogue,
)
from repro.chaos.scenarios import _FAST_RETRY
from repro.cli import EXIT_DEGRADED, main
from repro.exceptions import BudgetExceededError
from repro.fdd.fast import compare_fast
from repro.guard import Budget
from repro.parallel import compare_parallel, comparison_summary


def canonical(summary: dict) -> str:
    return json.dumps(summary, sort_keys=True)


def serial_summary(fw_a, fw_b) -> dict:
    return comparison_summary(compare_fast(fw_a, fw_b))


# ----------------------------------------------------------------------
# The scenario catalogue
# ----------------------------------------------------------------------


class TestScenarios:
    @pytest.mark.parametrize(
        "scenario",
        scenario_catalogue(),
        ids=[scenario.name for scenario in scenario_catalogue()],
    )
    def test_scenario_passes_under_fork(self, scenario):
        record = run_scenario(scenario, jobs=2, start_method="fork")
        assert record["parity"], (
            f"{scenario.name}: merged summary diverged from serial baseline"
        )
        assert record["engaged"], f"{scenario.name}: fault never engaged"
        assert record["passed"]

    def test_kill_exhaust_records_the_degradation(self):
        catalogue = {s.name: s for s in scenario_catalogue()}
        record = run_scenario(catalogue["kill-exhaust"], jobs=2, start_method="fork")
        assert record["passed"]
        (degradation,) = record["degradations"]
        assert degradation["reason"] == "worker-crash"
        assert degradation["retries"] == 3  # original dispatch + 2 retries
        assert [f["reason"] for f in record["failures"]] == ["worker-crash"] * 3

    def test_worker_kill_under_spawn(self):
        catalogue = {s.name: s for s in scenario_catalogue()}
        record = run_scenario(catalogue["worker-kill"], jobs=2, start_method="spawn")
        assert record["passed"]

    def test_suite_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            run_suite(["no-such-scenario"], jobs=2)

    def test_prepare_task_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            prepare_task(ChaosAction("explode"), object(), None)


# ----------------------------------------------------------------------
# jobs=1 stays untouched
# ----------------------------------------------------------------------


class TestSerialUnchanged:
    def test_jobs_1_ignores_chaos_and_never_degrades(self):
        fw_a, fw_b = make_firewall(41), make_firewall(42)
        result = compare_parallel(
            fw_a,
            fw_b,
            jobs=1,
            chaos=ChaosPlan({(0, 0): ChaosAction("kill")}),
        )
        assert canonical(result.summary()) == canonical(serial_summary(fw_a, fw_b))
        assert result.failures == () and result.degradations == ()
        assert not result.degraded()


# ----------------------------------------------------------------------
# Guard-budget accounting across retries (satellite)
# ----------------------------------------------------------------------


class TestBudgetAcrossRetries:
    """A retried shard re-ticks against the *aggregate* budget: retries
    can neither double-count a shard's spend nor outspend --max-nodes."""

    def _pair(self):
        return make_firewall(51), make_firewall(52)

    def _total_nodes(self, fw_a, fw_b) -> int:
        clean = compare_parallel(
            fw_a,
            fw_b,
            jobs=2,
            inline=False,
            start_method="fork",
            budget=Budget(max_nodes=10**9),
            supervision=_FAST_RETRY,
        )
        assert clean.failures == ()
        return clean.outcome["nodes_expanded"]

    def test_retried_shard_counts_once_against_the_aggregate(self):
        fw_a, fw_b = self._pair()
        total = self._total_nodes(fw_a, fw_b)
        # Shard 0's first attempt dies mid-construction; its partial
        # spend dies with it and only the successful retry is ticked,
        # so a budget of exactly the fault-free total still suffices.
        result = compare_parallel(
            fw_a,
            fw_b,
            jobs=2,
            inline=False,
            start_method="fork",
            budget=Budget(max_nodes=total),
            supervision=_FAST_RETRY,
            chaos=ChaosPlan({(0, 0): ChaosAction("raise")}),
        )
        assert canonical(result.summary()) == canonical(serial_summary(fw_a, fw_b))
        assert [f.reason for f in result.failures] == ["worker-error"]
        assert result.outcome["nodes_expanded"] == total

    def test_retries_cannot_exceed_max_nodes(self):
        fw_a, fw_b = self._pair()
        total = self._total_nodes(fw_a, fw_b)
        with pytest.raises(BudgetExceededError):
            compare_parallel(
                fw_a,
                fw_b,
                jobs=2,
                inline=False,
                start_method="fork",
                budget=Budget(max_nodes=total - 1),
                supervision=_FAST_RETRY,
                chaos=ChaosPlan({(0, 0): ChaosAction("raise")}),
            )


# ----------------------------------------------------------------------
# CLI: the chaos command and the degraded exit code
# ----------------------------------------------------------------------


class TestChaosCommand:
    def test_single_scenario_writes_json_report(self, tmp_path, capsys):
        report_path = tmp_path / "chaos.json"
        code = main(
            [
                "chaos",
                "--jobs",
                "2",
                "--scenario",
                "worker-kill",
                "--start-method",
                "fork",
                "--json",
                str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS  worker-kill" in out
        assert "1/1 scenario(s) passed" in out
        report = json.loads(report_path.read_text())
        assert report["passed"] is True
        assert report["scenarios"][0]["scenario"] == "worker-kill"
        assert report["scenarios"][0]["failures"][0]["reason"] == "worker-crash"

    def test_list_scenarios(self, capsys):
        assert main(["chaos", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for scenario in scenario_catalogue():
            assert scenario.name in out

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["chaos", "--scenario", "nope"]) == 2
        assert "unknown chaos scenario" in capsys.readouterr().err


class TestDegradedExitCode:
    def _policies(self, tmp_path):
        from repro.policy import dump
        from repro.synth import team_a_firewall, team_b_firewall

        path_a = tmp_path / "a.fw"
        path_b = tmp_path / "b.fw"
        dump(team_a_firewall(), path_a, schema_key="interface")
        dump(team_b_firewall(), path_b, schema_key="interface")
        return str(path_a), str(path_b)

    def _degrade_every_shard(self, monkeypatch):
        """Make every supervised dispatch fail so each shard degrades."""
        import repro.parallel as parallel_pkg

        real = parallel_pkg.compare_parallel

        class _KillEverything:
            def action_for(self, shard_index, attempt):
                return ChaosAction("kill")

        def chaotic(fw_a, fw_b, **kwargs):
            kwargs.setdefault("inline", False)
            kwargs.setdefault("start_method", "fork")
            kwargs.setdefault("supervision", _FAST_RETRY)
            kwargs["chaos"] = _KillEverything()
            kwargs["jobs"] = max(2, kwargs.get("jobs") or 2)
            return real(fw_a, fw_b, **kwargs)

        monkeypatch.setattr(parallel_pkg, "compare_parallel", chaotic)

    def test_equivalent_but_degraded_exits_5(self, tmp_path, capsys, monkeypatch):
        path_a, _ = self._policies(tmp_path)
        self._degrade_every_shard(monkeypatch)
        code = main(["equivalent", "--jobs", "2", path_a, path_a])
        captured = capsys.readouterr()
        assert code == EXIT_DEGRADED == 5
        assert "equivalent" in captured.out
        assert "degraded to serial execution" in captured.err

    def test_discrepancies_keep_exit_1_with_warning(self, tmp_path, capsys, monkeypatch):
        path_a, path_b = self._policies(tmp_path)
        self._degrade_every_shard(monkeypatch)
        code = main(["equivalent", "--jobs", "2", path_a, path_b])
        captured = capsys.readouterr()
        assert code == 1
        assert "NOT equivalent" in captured.out
        assert "degraded to serial execution" in captured.err
