"""Tests for canonical FDDs and semantic fingerprints."""

from hypothesis import given, settings

from repro.analysis import equivalent
from repro.fdd import canonical_fdd, semantic_fingerprint
from repro.fields import toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Rule

from tests.conftest import firewalls

SCHEMA = toy_schema(9, 9)


def r(decision, **conjuncts):
    return Rule.build(SCHEMA, decision, **conjuncts)


class TestFingerprint:
    def test_equivalent_policies_same_fingerprint(self):
        one = Firewall(SCHEMA, [r(ACCEPT, F1="0-3"), r(DISCARD)])
        two = Firewall(SCHEMA, [r(DISCARD, F1="4-9"), r(ACCEPT, F1="0-3"), r(DISCARD)])
        assert equivalent(one, two)
        assert semantic_fingerprint(one) == semantic_fingerprint(two)

    def test_different_policies_different_fingerprint(self):
        one = Firewall(SCHEMA, [r(ACCEPT, F1="0-3"), r(DISCARD)])
        two = Firewall(SCHEMA, [r(ACCEPT, F1="0-4"), r(DISCARD)])
        assert semantic_fingerprint(one) != semantic_fingerprint(two)

    def test_stable_across_calls(self):
        fw = Firewall(SCHEMA, [r(ACCEPT, F1="0-3"), r(DISCARD)])
        assert semantic_fingerprint(fw) == semantic_fingerprint(fw)

    def test_schema_included(self):
        other_schema = toy_schema(9, 8)
        fw1 = Firewall(SCHEMA, [r(ACCEPT)])
        fw2 = Firewall(other_schema, [Rule.build(other_schema, ACCEPT)])
        assert semantic_fingerprint(fw1) != semantic_fingerprint(fw2)

    def test_accepts_fdd_input(self):
        from repro.fdd import construct_fdd

        fw = Firewall(SCHEMA, [r(ACCEPT, F1="0-3"), r(DISCARD)])
        assert semantic_fingerprint(construct_fdd(fw)) == semantic_fingerprint(fw)

    def test_nonordered_fdd_normalized(self):
        from repro.fdd import FDDBuilder

        b = FDDBuilder(SCHEMA)
        inner = b.node("F1").edge("0-3", ACCEPT).otherwise(DISCARD)
        root = b.node("F2").edge("0-9", inner)
        designed = b.finish(root)
        reference = Firewall(SCHEMA, [r(ACCEPT, F1="0-3"), r(DISCARD)])
        assert semantic_fingerprint(designed) == semantic_fingerprint(reference)

    @given(firewalls(SCHEMA, max_rules=4), firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=30, deadline=None)
    def test_fingerprint_decides_equivalence(self, fw_a, fw_b):
        """Equal fingerprints <=> equivalent policies (on these inputs the
        canonical form is exact, not just collision-resistant)."""
        same = semantic_fingerprint(fw_a) == semantic_fingerprint(fw_b)
        assert same == equivalent(fw_a, fw_b)


class TestCanonicalFdd:
    def test_canonical_is_valid_and_ordered(self):
        fw = Firewall(SCHEMA, [r(ACCEPT, F1="0-3", F2="2-5"), r(DISCARD)])
        canonical = canonical_fdd(fw)
        canonical.validate()
        assert canonical.is_ordered()

    @given(firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=20, deadline=None)
    def test_canonical_preserves_semantics(self, firewall):
        canonical = canonical_fdd(firewall)
        from repro.fields import enumerate_universe

        for packet in list(enumerate_universe(SCHEMA))[::9]:
            assert canonical.evaluate(packet) == firewall(packet)
