"""Tests for the FDD wrapper: validation, paths, rules, statistics."""

import pytest

from repro.exceptions import FDDError
from repro.fdd import FDD, construct_fdd
from repro.fdd.node import InternalNode, TerminalNode
from repro.fields import enumerate_universe, toy_schema
from repro.intervals import IntervalSet
from repro.policy import ACCEPT, DISCARD, Firewall, Rule

SCHEMA = toy_schema(9, 9)


def valid_fdd() -> FDD:
    firewall = Firewall(
        SCHEMA,
        [
            Rule.build(SCHEMA, DISCARD, F1="0-3", F2="2-5"),
            Rule.build(SCHEMA, ACCEPT),
        ],
    )
    return construct_fdd(firewall)


class TestValidation:
    def test_valid_diagram_passes(self):
        valid_fdd().validate()

    def test_bare_terminal_is_legal(self):
        FDD(SCHEMA, TerminalNode(ACCEPT)).validate()

    def test_incomplete_node_rejected(self):
        node = InternalNode(0)
        node.add_edge(IntervalSet.of((0, 4)), TerminalNode(ACCEPT))
        with pytest.raises(FDDError, match="completeness"):
            FDD(SCHEMA, node).validate()

    def test_overlapping_edges_rejected(self):
        node = InternalNode(0)
        node.add_edge(IntervalSet.of((0, 5)), TerminalNode(ACCEPT))
        node.add_edge(IntervalSet.of((4, 9)), TerminalNode(DISCARD))
        with pytest.raises(FDDError, match="consistency"):
            FDD(SCHEMA, node).validate()

    def test_out_of_domain_label_rejected(self):
        node = InternalNode(0)
        node.add_edge(IntervalSet.of((0, 15)), TerminalNode(ACCEPT))
        with pytest.raises(FDDError, match="exceeds domain"):
            FDD(SCHEMA, node).validate()

    def test_unknown_field_rejected(self):
        node = InternalNode(7)
        node.add_edge(IntervalSet.of((0, 9)), TerminalNode(ACCEPT))
        with pytest.raises(FDDError, match="unknown field"):
            FDD(SCHEMA, node).validate()

    def test_repeated_field_rejected(self):
        inner = InternalNode(0)
        inner.add_edge(IntervalSet.of((0, 9)), TerminalNode(ACCEPT))
        root = InternalNode(0)
        root.add_edge(IntervalSet.of((0, 9)), inner)
        with pytest.raises(FDDError, match="repeated"):
            FDD(SCHEMA, root).validate()

    def test_childless_internal_rejected(self):
        with pytest.raises(FDDError, match="no outgoing"):
            FDD(SCHEMA, InternalNode(0)).validate()


class TestOrdering:
    def test_ordered(self):
        assert valid_fdd().is_ordered()

    def test_unordered_detected(self):
        inner = InternalNode(0)
        inner.add_edge(IntervalSet.of((0, 9)), TerminalNode(ACCEPT))
        root = InternalNode(1)
        root.add_edge(IntervalSet.of((0, 9)), inner)
        assert not FDD(SCHEMA, root).is_ordered()


class TestPathsAndRules:
    def test_paths_partition_universe(self):
        fdd = valid_fdd()
        seen = {}
        for path in fdd.paths():
            for packet in enumerate_universe(SCHEMA):
                if all(v in s for v, s in zip(packet, path.sets)):
                    assert packet not in seen
                    seen[packet] = path.decision
        assert len(seen) == SCHEMA.universe_size()

    def test_rules_view_agrees_with_evaluate(self):
        fdd = valid_fdd()
        for rule in fdd.rules():
            # Pick the corner packet of each rule region.
            packet = tuple(values.min() for values in rule.predicate.sets)
            assert fdd.evaluate(packet) == rule.decision

    def test_to_firewall_equivalent(self):
        fdd = valid_fdd()
        as_firewall = fdd.to_firewall()
        for packet in enumerate_universe(SCHEMA):
            assert as_firewall(packet) == fdd.evaluate(packet)

    def test_count_paths_matches_enumeration(self):
        fdd = valid_fdd()
        assert fdd.count_paths() == len(list(fdd.paths()))


class TestStats:
    def test_stats_fields(self):
        stats = valid_fdd().stats()
        assert stats.nodes > 0 and stats.edges > 0
        assert stats.depth == 2
        assert stats.paths == valid_fdd().count_paths()

    def test_clone_independent(self):
        fdd = valid_fdd()
        copy = fdd.clone()
        copy.root.edges[0].target = TerminalNode(DISCARD)
        fdd.validate()  # original untouched

    def test_map_terminals(self):
        fdd = valid_fdd()
        flipped = fdd.map_terminals(lambda d: ACCEPT if d == DISCARD else DISCARD)
        for packet in enumerate_universe(SCHEMA):
            assert flipped.evaluate(packet) != fdd.evaluate(packet)

    def test_repr(self):
        assert "FDD" in repr(valid_fdd())
