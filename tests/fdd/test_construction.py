"""Tests for the FDD construction algorithm (Section 3, Fig. 7).

The key contract: the constructed FDD is a valid, ordered FDD that maps
every packet to the same decision as the source firewall's first-match
evaluation — verified exhaustively on toy schemas and by property tests.
"""

from hypothesis import given, settings

from repro.fdd import construct_fdd
from repro.fdd.construction import build_decision_path
from repro.fdd.node import InternalNode, TerminalNode
from repro.fields import enumerate_universe, toy_schema
from repro.intervals import IntervalSet
from repro.policy import ACCEPT, DISCARD, Firewall, Rule
from repro.synth import team_a_firewall, team_b_firewall

from tests.conftest import firewalls

SCHEMA = toy_schema(9, 9)


def fw(*rules):
    return Firewall(SCHEMA, rules)


def r(decision, **conjuncts):
    return Rule.build(SCHEMA, decision, **conjuncts)


class TestBuildDecisionPath:
    def test_single_rule_path(self):
        sets = (IntervalSet.of((2, 4)), IntervalSet.of((0, 9)))
        node = build_decision_path(SCHEMA, sets, ACCEPT, 0)
        assert isinstance(node, InternalNode) and node.field_index == 0
        assert node.edges[0].label == sets[0]
        leaf = node.edges[0].target.edges[0].target
        assert isinstance(leaf, TerminalNode) and leaf.decision == ACCEPT

    def test_suffix_start(self):
        sets = (IntervalSet.of((2, 4)), IntervalSet.of((5, 6)))
        node = build_decision_path(SCHEMA, sets, DISCARD, 1)
        assert isinstance(node, InternalNode) and node.field_index == 1


class TestConstructionSemantics:
    def test_single_catchall(self):
        fdd = construct_fdd(fw(r(ACCEPT)))
        fdd.validate()
        assert fdd.evaluate((0, 0)) == ACCEPT

    def test_two_rules(self):
        fdd = construct_fdd(fw(r(DISCARD, F1="3-5"), r(ACCEPT)))
        fdd.validate()
        assert fdd.evaluate((4, 0)) == DISCARD
        assert fdd.evaluate((6, 0)) == ACCEPT

    def test_overlapping_conflicting_rules(self):
        firewall = fw(
            r(ACCEPT, F1="0-5", F2="0-5"),
            r(DISCARD, F1="3-9"),
            r(ACCEPT),
        )
        fdd = construct_fdd(firewall)
        fdd.validate()
        for packet in enumerate_universe(SCHEMA):
            assert fdd.evaluate(packet) == firewall(packet)

    def test_multi_interval_conjuncts(self):
        firewall = fw(r(DISCARD, F1="0-1, 8-9"), r(ACCEPT))
        fdd = construct_fdd(firewall)
        fdd.validate()
        for packet in enumerate_universe(SCHEMA):
            assert fdd.evaluate(packet) == firewall(packet)

    def test_shadowed_rule_is_absorbed(self):
        # Rule 2 is fully shadowed; the FDD must reflect rule 1 only.
        firewall = fw(r(ACCEPT, F1="0-5"), r(DISCARD, F1="2-3"), r(ACCEPT))
        fdd = construct_fdd(firewall)
        assert fdd.evaluate((2, 0)) == ACCEPT

    def test_result_is_ordered(self):
        fdd = construct_fdd(fw(r(DISCARD, F1="3-5", F2="1-2"), r(ACCEPT)))
        assert fdd.is_ordered()

    def test_paper_example_fdds(self):
        for firewall in (team_a_firewall(), team_b_firewall()):
            fdd = construct_fdd(firewall)
            fdd.validate()
            assert fdd.is_ordered()
            # Spot-check the motivating packets.
            mail = 0xC0A80001
            malicious = 0xE0A80000
            # e-mail from malicious domain: A accepts (rule 1 first)...
            packet = (0, malicious, mail, 25, 0)
            expected = firewall(packet)
            assert fdd.evaluate(packet) == expected

    @given(firewalls(SCHEMA, max_rules=6))
    @settings(max_examples=60, deadline=None)
    def test_equivalence_exhaustive(self, firewall):
        fdd = construct_fdd(firewall)
        for packet in enumerate_universe(SCHEMA):
            assert fdd.evaluate(packet) == firewall(packet)

    @given(firewalls(toy_schema(5, 5, 5), max_rules=5, include_log=True))
    @settings(max_examples=30, deadline=None)
    def test_equivalence_three_fields_multi_decision(self, firewall):
        fdd = construct_fdd(firewall)
        fdd.validate()
        for packet in enumerate_universe(firewall.schema):
            assert fdd.evaluate(packet) == firewall(packet)

    @given(firewalls(SCHEMA, max_rules=5))
    @settings(max_examples=40, deadline=None)
    def test_constructed_fdd_is_valid_and_ordered(self, firewall):
        fdd = construct_fdd(firewall)
        fdd.validate()
        assert fdd.is_ordered()


class TestFig6Scenario:
    """The paper's Fig. 6: appending Team A's rule 2 splits the I=0 edge."""

    def test_append_creates_expected_splits(self):
        firewall = team_a_firewall()
        from repro.fdd.construction import append_rule
        from repro.fdd.fdd import FDD as FDDClass

        first = firewall.rules[0]
        root = build_decision_path(
            firewall.schema, first.predicate.sets, first.decision, 0
        )
        partial = FDDClass(firewall.schema, root)
        # After rule 1 only: root has a single outgoing edge for I=0.
        assert len(root.edges) == 1
        append_rule(partial, firewall.rules[1])
        # Rule 2 also constrains I=0 but different sources: the S-level
        # must now distinguish the malicious domain.
        s_node = root.edges[0].target
        assert isinstance(s_node, InternalNode)
        assert len(s_node.edges) >= 2
