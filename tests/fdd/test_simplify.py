"""Tests for the simple-FDD transformation (Definition 4.3)."""

from hypothesis import given, settings

from repro.fdd import construct_fdd, make_simple
from repro.fields import enumerate_universe, toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Rule

from tests.conftest import firewalls

SCHEMA = toy_schema(9, 9)


def sample_fdd():
    firewall = Firewall(
        SCHEMA,
        [
            Rule.build(SCHEMA, DISCARD, F1="0-1, 8-9"),  # multi-interval edge
            Rule.build(SCHEMA, ACCEPT),
        ],
    )
    return firewall, construct_fdd(firewall)


class TestMakeSimple:
    def test_result_is_simple(self):
        _, fdd = sample_fdd()
        simple = make_simple(fdd)
        simple.check_simple()
        simple.validate()

    def test_input_unmodified(self):
        _, fdd = sample_fdd()
        before = fdd.count_paths()
        make_simple(fdd)
        assert fdd.count_paths() == before

    def test_semantics_preserved(self):
        firewall, fdd = sample_fdd()
        simple = make_simple(fdd)
        for packet in enumerate_universe(SCHEMA):
            assert simple.evaluate(packet) == firewall(packet)

    def test_edges_sorted(self):
        _, fdd = sample_fdd()
        simple = make_simple(fdd)
        from repro.fdd.node import InternalNode, iter_nodes

        for node in iter_nodes(simple.root):
            if isinstance(node, InternalNode):
                minimums = [edge.label.min() for edge in node.edges]
                assert minimums == sorted(minimums)

    def test_terminal_only(self):
        from repro.fdd import FDD
        from repro.fdd.node import TerminalNode

        simple = make_simple(FDD(SCHEMA, TerminalNode(ACCEPT)))
        assert simple.is_simple()

    @given(firewalls(SCHEMA, max_rules=5))
    @settings(max_examples=40, deadline=None)
    def test_simplify_preserves_semantics_property(self, firewall):
        simple = make_simple(construct_fdd(firewall))
        simple.check_simple()
        for packet in list(enumerate_universe(SCHEMA))[::3]:
            assert simple.evaluate(packet) == firewall(packet)
