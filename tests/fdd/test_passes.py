"""fold / product_fold: visit discipline and agreement with the engines."""

from repro.fields import toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Rule
from repro.fdd.fast import compare_fast, construct_fdd_fast
from repro.fdd.node import TerminalNode, iter_nodes
from repro.fdd.passes import fold, product_fold
from repro.fdd.store import NodeStore

SCHEMA = toy_schema(9, 9)


def shared_fdd():
    fw = Firewall(
        SCHEMA,
        [
            Rule.build(SCHEMA, DISCARD, F1=(2, 4)),
            Rule.build(SCHEMA, DISCARD, F1=(6, 8)),
            Rule.build(SCHEMA, ACCEPT),
        ],
    )
    return fw, construct_fdd_fast(fw)


class TestFold:
    def test_visits_each_shared_node_exactly_once(self):
        _, fdd = shared_fdd()
        visits: list[int] = []

        def terminal(node):
            visits.append(id(node))
            return 1

        def internal(node, child_values):
            visits.append(id(node))
            return sum(child_values)

        fold(fdd.root, terminal=terminal, internal=internal)
        assert len(visits) == len(set(visits))
        assert len(visits) == len(list(iter_nodes(fdd.root)))

    def test_path_count_fold_matches_fdd_count_paths(self):
        _, fdd = shared_fdd()
        paths = fold(
            fdd.root,
            terminal=lambda node: 1,
            internal=lambda node, childs: sum(childs),
        )
        assert paths == fdd.count_paths()

    def test_shared_memo_carries_across_roots(self):
        store = NodeStore()
        fw_a = Firewall(
            SCHEMA,
            [Rule.build(SCHEMA, DISCARD, F1=(2, 4)), Rule.build(SCHEMA, ACCEPT)],
        )
        fw_b = Firewall(
            SCHEMA,
            [Rule.build(SCHEMA, DISCARD, F1=(2, 5)), Rule.build(SCHEMA, ACCEPT)],
        )
        root_a = construct_fdd_fast(fw_a, store).root
        root_b = construct_fdd_fast(fw_b, store).root
        memo: dict[int, int] = {}
        fold(
            root_a,
            terminal=lambda n: 1,
            internal=lambda n, c: sum(c),
            memo=memo,
        )
        before = set(memo)
        fold(
            root_b,
            terminal=lambda n: 1,
            internal=lambda n, c: sum(c),
            memo=memo,
        )
        # The two diagrams share subgraphs in one store; the second fold
        # reuses (not recomputes) the shared entries.
        assert before & set(memo) == before


class TestProductFold:
    def test_agrees_with_compare_fast_on_disputed_count(self):
        store = NodeStore()
        fw_a = Firewall(SCHEMA, [Rule.build(SCHEMA, ACCEPT)])
        fw_b = Firewall(
            SCHEMA,
            [Rule.build(SCHEMA, DISCARD, F1=(2, 4)), Rule.build(SCHEMA, ACCEPT)],
        )
        root_a = construct_fdd_fast(fw_a, store).root
        root_b = construct_fdd_fast(fw_b, store).root

        def leaf(na: TerminalNode, nb: TerminalNode) -> int:
            return 1 if na.decision != nb.decision else 0

        def node(field: int, edges: list) -> int:
            # Weighted model count; both inputs keep every field on every
            # path, so no domain-gap correction is needed here.
            return sum(label.count() * child for label, child in edges)

        disputed = product_fold(
            root_a,
            root_b,
            len(SCHEMA),
            intersect=store.intersect,
            leaf=leaf,
            node=node,
        )
        assert disputed == compare_fast(fw_a, fw_b).disputed_packet_count()

    def test_visit_hook_sees_every_pair_arrival(self):
        store = NodeStore()
        fw_a = Firewall(SCHEMA, [Rule.build(SCHEMA, ACCEPT)])
        fw_b = Firewall(
            SCHEMA,
            [Rule.build(SCHEMA, DISCARD, F1=(2, 4)), Rule.build(SCHEMA, ACCEPT)],
        )
        root_a = construct_fdd_fast(fw_a, store).root
        root_b = construct_fdd_fast(fw_b, store).root
        arrivals: list[tuple[int, int]] = []
        memo: dict[tuple[int, int], int] = {}

        def visit(na, nb):
            arrivals.append((id(na), id(nb)))

        def node(field, edges):
            return sum(child for _, child in edges)

        product_fold(
            root_a,
            root_b,
            len(SCHEMA),
            intersect=store.intersect,
            leaf=lambda a, b: 1,
            node=node,
            visit=visit,
            memo=memo,
        )
        # Every expansion was announced; re-arrivals (memo hits) may add more.
        assert set(memo) <= set(arrivals)
