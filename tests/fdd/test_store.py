"""NodeStore: interning identities, functional append, memoized algebra."""

import pytest

from repro.fields import toy_schema
from repro.guard import Budget, GuardContext
from repro.intervals import IntervalSet
from repro.policy import ACCEPT, ACCEPT_LOG, DISCARD, Firewall, Rule
from repro.fdd.construction import construct_fdd
from repro.fdd.fast import construct_fdd_fast
from repro.fdd.reduce import reduce_fdd
from repro.fdd.store import NodeStore

SCHEMA = toy_schema(9, 9)


def make_firewall(rules):
    return Firewall(SCHEMA, rules)


class TestInterning:
    def test_terminals_are_unique_per_decision(self):
        store = NodeStore()
        assert store.terminal(ACCEPT) is store.terminal(ACCEPT)
        assert store.terminal(ACCEPT) is not store.terminal(DISCARD)

    def test_structurally_equal_internals_are_identical(self):
        store = NodeStore()
        leaf = store.terminal(ACCEPT)
        a = store.internal(0, [(IntervalSet.span(0, 4), leaf)])
        b = store.internal(0, [(IntervalSet.span(0, 4), leaf)])
        assert a is b

    def test_parallel_edges_to_one_child_merge(self):
        store = NodeStore()
        leaf = store.terminal(ACCEPT)
        node = store.internal(
            0, [(IntervalSet.span(0, 3), leaf), (IntervalSet.span(4, 9), leaf)]
        )
        assert len(node.edges) == 1
        assert node.edges[0].label == IntervalSet.span(0, 9)

    def test_owns_reports_store_membership(self):
        store = NodeStore()
        other = NodeStore()
        node = store.terminal(ACCEPT)
        assert store.owns(node)
        assert not other.owns(node)

    def test_intern_is_idempotent_and_o1_on_owned_nodes(self):
        store = NodeStore()
        fdd = construct_fdd_fast(
            make_firewall(
                [Rule.build(SCHEMA, DISCARD, F1=(2, 4)), Rule.build(SCHEMA, ACCEPT)]
            ),
            store,
        )
        assert store.intern(fdd.root) is fdd.root

    def test_intern_external_tree_merges_isomorphic_subgraphs(self):
        fw = make_firewall(
            [Rule.build(SCHEMA, DISCARD, F1=(2, 4)), Rule.build(SCHEMA, ACCEPT)]
        )
        tree = construct_fdd(fw)  # mutable reference tree, no sharing
        store = NodeStore()
        shared = store.intern(tree.root)
        fast = construct_fdd_fast(fw, store)
        assert shared is fast.root  # same store => same canonical node
        # The input tree is untouched.
        assert not store.owns(tree.root)

    def test_allocation_counters_count_real_allocations_only(self):
        store = NodeStore()
        leaf = store.terminal(ACCEPT)
        store.terminal(ACCEPT)  # interning hit
        store.internal(0, [(IntervalSet.span(0, 9), leaf)])
        store.internal(0, [(IntervalSet.span(0, 9), leaf)])  # hit
        assert store.nodes_created == 2
        assert store.edges_created == 1
        stats = store.stats()
        assert stats["terminals"] == 1
        assert stats["internals"] == 1

    def test_store_guard_ticks_on_allocation(self):
        guard = GuardContext(Budget.unlimited())
        store = NodeStore(guard=guard)
        leaf = store.terminal(ACCEPT)
        store.internal(0, [(IntervalSet.span(0, 9), leaf)])
        store.internal(0, [(IntervalSet.span(0, 9), leaf)])  # hit: no tick
        assert guard.progress()["nodes_expanded"] == 2


class TestAppend:
    def test_dead_rule_returns_the_same_root(self):
        store = NodeStore()
        root = store.chain(
            tuple(Rule.build(SCHEMA, ACCEPT).predicate.sets), ACCEPT
        )
        dead = Rule.build(SCHEMA, DISCARD, F1=(2, 4))
        assert store.append(root, dead.predicate.sets, DISCARD) is root

    def test_effective_rule_returns_a_new_root(self):
        store = NodeStore()
        first = Rule.build(SCHEMA, ACCEPT, F1=(0, 3))
        root = store.chain(tuple(first.predicate.sets), ACCEPT)
        second = Rule.build(SCHEMA, DISCARD)
        assert store.append(root, second.predicate.sets, DISCARD) is not root

    def test_append_matches_reference_semantics(self):
        fw = make_firewall(
            [
                Rule.build(SCHEMA, ACCEPT, F1=(0, 3), F2=(1, 5)),
                Rule.build(SCHEMA, DISCARD, F1=(2, 7)),
                Rule.build(SCHEMA, ACCEPT),
            ]
        )
        fast = construct_fdd_fast(fw)
        for p in [(0, 0), (2, 3), (3, 9), (7, 0), (9, 9)]:
            assert fast.evaluate(p) == fw(p)

    def test_append_guard_budget_trips(self):
        from repro.exceptions import BudgetExceededError

        store = NodeStore()
        first = Rule.build(SCHEMA, ACCEPT, F1=(0, 3))
        root = store.chain(tuple(first.predicate.sets), ACCEPT)
        guard = GuardContext(Budget(max_nodes=1))
        with pytest.raises(BudgetExceededError):
            store.append(
                root,
                Rule.build(SCHEMA, DISCARD).predicate.sets,
                DISCARD,
                guard=guard,
            )


class TestMapTerminals:
    def test_relabels_and_shares(self):
        store = NodeStore()
        fdd = construct_fdd_fast(
            make_firewall(
                [Rule.build(SCHEMA, DISCARD, F1=(2, 4)), Rule.build(SCHEMA, ACCEPT)]
            ),
            store,
        )
        flipped = store.map_terminals(fdd.root, {DISCARD: ACCEPT_LOG})
        from repro.fdd.fdd import FDD

        out = FDD(SCHEMA, flipped)
        assert out.evaluate((3, 0)) == ACCEPT_LOG
        assert out.evaluate((0, 0)) == ACCEPT
        # Identity mapping is a no-op node-wise.
        assert store.map_terminals(fdd.root, {}) is fdd.root

    def test_relabel_is_memoized(self):
        store = NodeStore()
        fdd = construct_fdd_fast(
            make_firewall(
                [Rule.build(SCHEMA, DISCARD, F1=(2, 4)), Rule.build(SCHEMA, ACCEPT)]
            ),
            store,
        )
        once = store.map_terminals(fdd.root, {DISCARD: ACCEPT_LOG})
        twice = store.map_terminals(fdd.root, {DISCARD: ACCEPT_LOG})
        assert once is twice


class TestReduceDelegation:
    def test_reduce_into_shared_store_reuses_nodes(self):
        fw = make_firewall(
            [Rule.build(SCHEMA, DISCARD, F1=(2, 4)), Rule.build(SCHEMA, ACCEPT)]
        )
        store = NodeStore()
        fast = construct_fdd_fast(fw, store)
        reduced = reduce_fdd(construct_fdd(fw), store=store)
        assert reduced.root is fast.root

    def test_reduce_default_store_is_private(self):
        fw = make_firewall(
            [Rule.build(SCHEMA, DISCARD, F1=(2, 4)), Rule.build(SCHEMA, ACCEPT)]
        )
        reduced = reduce_fdd(construct_fdd(fw))
        reduced.validate()
        for p in [(0, 0), (3, 3), (9, 9)]:
            assert reduced.evaluate(p) == fw(p)
