"""Tests for FDD marking and firewall generation ([12], Section 6.1)."""

from hypothesis import given, settings

from repro.fdd import (
    construct_fdd,
    generate_firewall,
    generate_rules,
    mark_fdd,
    node_load,
    reduce_fdd,
)
from repro.fdd.node import InternalNode
from repro.fields import enumerate_universe, toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Rule

from tests.conftest import firewalls

SCHEMA = toy_schema(9, 9)


def r(decision, **conjuncts):
    return Rule.build(SCHEMA, decision, **conjuncts)


class TestMarking:
    def test_every_internal_node_marked(self):
        fdd = construct_fdd(
            Firewall(SCHEMA, [r(DISCARD, F1="2-4"), r(ACCEPT)])
        )
        marking = mark_fdd(fdd)
        from repro.fdd.node import iter_nodes

        internal = [n for n in iter_nodes(fdd.root) if isinstance(n, InternalNode)]
        assert set(marking) == {id(n) for n in internal}
        for node in internal:
            assert marking[id(node)] in node.edges

    def test_marks_widest_edge(self):
        # The multi-interval edge should be marked: widening it to "all"
        # saves (intervals - 1) * load simple rules.
        fdd = reduce_fdd(
            construct_fdd(
                Firewall(SCHEMA, [r(DISCARD, F1="0-1, 4-5, 8-9"), r(ACCEPT)])
            )
        )
        marking = mark_fdd(fdd)
        root = fdd.root
        assert isinstance(root, InternalNode)
        chosen = marking[id(root)]
        assert len(chosen.label.intervals) == max(
            len(e.label.intervals) for e in root.edges
        )

    def test_node_load_accounts_marking(self):
        fdd = reduce_fdd(
            construct_fdd(
                Firewall(SCHEMA, [r(DISCARD, F1="0-1, 4-5, 8-9"), r(ACCEPT)])
            )
        )
        marking = mark_fdd(fdd)
        load_marked = node_load(fdd.root, marking)
        load_unmarked = node_load(fdd.root, {})
        assert load_marked < load_unmarked


class TestGeneration:
    def test_generated_rules_equivalent(self):
        firewall = Firewall(
            SCHEMA, [r(DISCARD, F1="2-4", F2="0-5"), r(ACCEPT, F2="3-9"), r(DISCARD)]
        )
        fdd = construct_fdd(firewall)
        rules = generate_rules(fdd)
        regenerated = Firewall(SCHEMA, rules)
        for packet in enumerate_universe(SCHEMA):
            assert regenerated(packet) == firewall(packet)

    def test_last_rule_is_catchall(self):
        firewall = Firewall(SCHEMA, [r(DISCARD, F1="2-4"), r(ACCEPT)])
        rules = generate_rules(construct_fdd(firewall))
        assert rules[-1].predicate.is_match_all()

    def test_generate_firewall_compacts(self):
        firewall = Firewall(
            SCHEMA,
            [
                r(DISCARD, F1="2-4"),
                r(DISCARD, F1="5-7"),
                r(ACCEPT),
            ],
        )
        final = generate_firewall(construct_fdd(firewall))
        for packet in enumerate_universe(SCHEMA):
            assert final(packet) == firewall(packet)
        # Reduction + marking + redundancy removal should not blow up the
        # policy: a handful of rules suffices for two discard bands.
        assert len(final) <= 4

    def test_generate_without_reduce_or_compact(self):
        firewall = Firewall(SCHEMA, [r(DISCARD, F1="2-4"), r(ACCEPT)])
        final = generate_firewall(
            construct_fdd(firewall), reduce=False, compact=False
        )
        for packet in enumerate_universe(SCHEMA):
            assert final(packet) == firewall(packet)

    @given(firewalls(SCHEMA, max_rules=4, include_log=True))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, firewall):
        """construct -> reduce -> generate must reproduce the semantics."""
        final = generate_firewall(
            construct_fdd(firewall), compact=False
        )
        for packet in list(enumerate_universe(SCHEMA))[::3]:
            assert final(packet) == firewall(packet)
