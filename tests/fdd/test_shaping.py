"""Tests for the shaping algorithm (Section 4, Figs. 10/11).

Contracts: the two outputs are simple, semi-isomorphic, and each is
semantically equivalent to its input — checked structurally and
exhaustively on toy schemas, plus on the paper's running example.
"""

import pytest
from hypothesis import given, settings

from repro.exceptions import NotOrderedError, SchemaError
from repro.fdd import are_semi_isomorphic, construct_fdd, make_semi_isomorphic
from repro.fields import enumerate_universe, toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Rule
from repro.synth import team_a_firewall, team_b_firewall

from tests.conftest import firewalls

SCHEMA = toy_schema(9, 9)


def r(decision, **conjuncts):
    return Rule.build(SCHEMA, decision, **conjuncts)


class TestMakeSemiIsomorphic:
    def test_basic_pair(self):
        fa = construct_fdd(Firewall(SCHEMA, [r(ACCEPT, F1="0-4"), r(DISCARD)]))
        fb = construct_fdd(Firewall(SCHEMA, [r(DISCARD, F1="2-7"), r(ACCEPT)]))
        sa, sb = make_semi_isomorphic(fa, fb)
        assert are_semi_isomorphic(sa, sb)
        sa.check_simple()
        sb.check_simple()
        sa.validate()
        sb.validate()

    def test_inputs_unmodified(self):
        fa = construct_fdd(Firewall(SCHEMA, [r(ACCEPT, F1="0-4"), r(DISCARD)]))
        fb = construct_fdd(Firewall(SCHEMA, [r(DISCARD, F2="2-7"), r(ACCEPT)]))
        paths_a, paths_b = fa.count_paths(), fb.count_paths()
        make_semi_isomorphic(fa, fb)
        assert fa.count_paths() == paths_a and fb.count_paths() == paths_b

    def test_semantics_preserved_both_sides(self):
        fw_a = Firewall(SCHEMA, [r(ACCEPT, F1="0-4", F2="3-6"), r(DISCARD)])
        fw_b = Firewall(SCHEMA, [r(DISCARD, F2="0-7"), r(ACCEPT)])
        sa, sb = make_semi_isomorphic(construct_fdd(fw_a), construct_fdd(fw_b))
        for packet in enumerate_universe(SCHEMA):
            assert sa.evaluate(packet) == fw_a(packet)
            assert sb.evaluate(packet) == fw_b(packet)

    def test_paper_example(self):
        fa = construct_fdd(team_a_firewall())
        fb = construct_fdd(team_b_firewall())
        sa, sb = make_semi_isomorphic(fa, fb)
        assert are_semi_isomorphic(sa, sb)

    def test_schema_mismatch_rejected(self):
        fa = construct_fdd(Firewall(SCHEMA, [r(ACCEPT)]))
        other = toy_schema(9, 9, 9)
        fb = construct_fdd(Firewall(other, [Rule.build(other, ACCEPT)]))
        with pytest.raises(SchemaError):
            make_semi_isomorphic(fa, fb)

    def test_unordered_rejected(self):
        from repro.fdd import FDD
        from repro.fdd.node import InternalNode, TerminalNode
        from repro.intervals import IntervalSet

        inner = InternalNode(0)
        inner.add_edge(IntervalSet.span(0, 9), TerminalNode(ACCEPT))
        root = InternalNode(1)
        root.add_edge(IntervalSet.span(0, 9), inner)
        bad = FDD(SCHEMA, root)
        good = construct_fdd(Firewall(SCHEMA, [r(ACCEPT)]))
        with pytest.raises(NotOrderedError):
            make_semi_isomorphic(bad, good)

    def test_node_insertion_case(self):
        """One diagram skips a field entirely -> shaping must insert it."""
        from repro.fdd import FDD
        from repro.fdd.node import InternalNode, TerminalNode
        from repro.intervals import IntervalSet

        # fa: only tests F2 (F1 unconstrained); fb: tests both fields.
        inner = InternalNode(1)
        inner.add_edge(IntervalSet.span(0, 4), TerminalNode(ACCEPT))
        inner.add_edge(IntervalSet.span(5, 9), TerminalNode(DISCARD))
        fa = FDD(SCHEMA, inner)
        fw_b = Firewall(SCHEMA, [r(DISCARD, F1="0-3", F2="0-3"), r(ACCEPT)])
        fb = construct_fdd(fw_b)
        sa, sb = make_semi_isomorphic(fa, fb)
        assert are_semi_isomorphic(sa, sb)
        for packet in enumerate_universe(SCHEMA):
            expected_a = ACCEPT if packet[1] <= 4 else DISCARD
            assert sa.evaluate(packet) == expected_a
            assert sb.evaluate(packet) == fw_b(packet)

    def test_terminal_vs_internal_root(self):
        """A constant FDD shaped against a real one gains every field."""
        from repro.fdd import FDD
        from repro.fdd.node import TerminalNode

        fa = FDD(SCHEMA, TerminalNode(ACCEPT))
        fw_b = Firewall(SCHEMA, [r(DISCARD, F1="3-4"), r(ACCEPT)])
        sa, sb = make_semi_isomorphic(fa, construct_fdd(fw_b))
        assert are_semi_isomorphic(sa, sb)
        for packet in enumerate_universe(SCHEMA):
            assert sa.evaluate(packet) == ACCEPT

    @given(firewalls(SCHEMA, max_rules=4), firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=30, deadline=None)
    def test_shaping_property(self, fw_a, fw_b):
        sa, sb = make_semi_isomorphic(construct_fdd(fw_a), construct_fdd(fw_b))
        assert are_semi_isomorphic(sa, sb)
        for packet in list(enumerate_universe(SCHEMA))[::7]:
            assert sa.evaluate(packet) == fw_a(packet)
            assert sb.evaluate(packet) == fw_b(packet)


class TestAreSemiIsomorphic:
    def test_different_schemas(self):
        fa = construct_fdd(Firewall(SCHEMA, [r(ACCEPT)]))
        other = toy_schema(9, 9, 9)
        fb = construct_fdd(Firewall(other, [Rule.build(other, ACCEPT)]))
        assert not are_semi_isomorphic(fa, fb)

    def test_terminals_may_differ(self):
        fa = construct_fdd(Firewall(SCHEMA, [r(ACCEPT)]))
        fb = construct_fdd(Firewall(SCHEMA, [r(DISCARD)]))
        assert are_semi_isomorphic(fa, fb)

    def test_structure_must_match(self):
        fa = construct_fdd(Firewall(SCHEMA, [r(ACCEPT, F1="0-4"), r(DISCARD)]))
        fb = construct_fdd(Firewall(SCHEMA, [r(ACCEPT)]))
        assert not are_semi_isomorphic(fa, fb)
