"""Tests for the FDD design builder and field reordering (Section 7.2)."""

import pytest

from repro.exceptions import FDDError, SchemaError
from repro.fdd import FDDBuilder, compare_fdds, construct_fdd, reorder_fdd
from repro.fields import enumerate_universe, toy_schema
from repro.intervals import IntervalSet
from repro.policy import ACCEPT, DISCARD, Firewall, Rule
from repro.synth import mail_example_schema, team_b_firewall
from repro.synth.workloads import MAIL_SERVER, MALICIOUS_HI, MALICIOUS_LO

SCHEMA = toy_schema(9, 9)


class TestBuilder:
    def test_basic_build(self):
        b = FDDBuilder(SCHEMA)
        leaf = b.node("F2").edge("0-4", ACCEPT).otherwise(DISCARD)
        root = b.node("F1").edge("0-2", leaf).otherwise(DISCARD)
        fdd = b.finish(root)
        fdd.validate()
        assert fdd.evaluate((1, 3)) == ACCEPT
        assert fdd.evaluate((1, 7)) == DISCARD
        assert fdd.evaluate((5, 3)) == DISCARD

    def test_consistency_enforced_at_call_time(self):
        b = FDDBuilder(SCHEMA)
        node = b.node("F1").edge("0-4", ACCEPT)
        with pytest.raises(FDDError, match="outside the node's uncovered"):
            node.edge("3-6", DISCARD)

    def test_completeness_enforced_at_finish(self):
        b = FDDBuilder(SCHEMA)
        root = b.node("F1").edge("0-4", ACCEPT)
        with pytest.raises(FDDError, match="incomplete"):
            b.finish(root)

    def test_otherwise_on_complete_node(self):
        b = FDDBuilder(SCHEMA)
        root = b.node("F1").edge("0-9", ACCEPT)
        with pytest.raises(FDDError, match="already complete"):
            root.otherwise(DISCARD)

    def test_empty_edge_rejected(self):
        b = FDDBuilder(SCHEMA)
        with pytest.raises(FDDError):
            b.node("F1").edge(IntervalSet.empty(), ACCEPT)

    def test_bad_target(self):
        b = FDDBuilder(SCHEMA)
        with pytest.raises(SchemaError):
            b.node("F1").edge("0-9", "accept")  # strings are not targets

    def test_interval_set_and_tuple_values(self):
        b = FDDBuilder(SCHEMA)
        root = (
            b.node("F1")
            .edge(IntervalSet.of((0, 2)), ACCEPT)
            .edge((5, 6), DISCARD)
            .otherwise(ACCEPT)
        )
        fdd = b.finish(root)
        assert fdd.evaluate((5, 0)) == DISCARD
        assert fdd.evaluate((8, 0)) == ACCEPT

    def test_paper_spec_as_fdd(self):
        """Design the Section 2.1 specification directly as an FDD and
        check it is equivalent to Team B's rule sequence."""
        schema = mail_example_schema()
        b = FDDBuilder(schema)
        malicious = IntervalSet.span(MALICIOUS_LO, MALICIOUS_HI)
        mail = IntervalSet.single(MAIL_SERVER)

        email_only = b.node("protocol").edge(0, ACCEPT).otherwise(DISCARD)
        port_check = b.node("dst_port").edge(25, email_only).otherwise(DISCARD)
        dst_check = b.node("dst_ip").edge(mail, port_check).otherwise(ACCEPT)
        src_check = b.node("src_ip").edge(malicious, DISCARD).otherwise(dst_check)
        root = b.node("interface").edge(0, src_check).otherwise(ACCEPT)
        designed = b.finish(root)

        assert not compare_fdds(designed, construct_fdd(team_b_firewall()))


class TestReorder:
    def test_round_trip_same_order(self):
        firewall = Firewall(
            SCHEMA,
            [Rule.build(SCHEMA, DISCARD, F1="2-4", F2="1-7"), Rule.build(SCHEMA, ACCEPT)],
        )
        fdd = construct_fdd(firewall)
        again = reorder_fdd(fdd)
        for packet in enumerate_universe(SCHEMA):
            assert again.evaluate(packet) == firewall(packet)

    def test_reorder_fields(self):
        firewall = Firewall(
            SCHEMA,
            [Rule.build(SCHEMA, DISCARD, F1="2-4", F2="1-7"), Rule.build(SCHEMA, ACCEPT)],
        )
        fdd = construct_fdd(firewall)
        flipped = reorder_fdd(fdd, ["F2", "F1"])
        assert flipped.is_ordered()
        assert flipped.schema.fields[0].name == "F2"
        for packet in enumerate_universe(SCHEMA):
            assert flipped.evaluate((packet[1], packet[0])) == firewall(packet)

    def test_non_ordered_design_handled(self):
        """A hand-built non-ordered FDD becomes a comparable ordered one."""
        b = FDDBuilder(SCHEMA)
        # Root on F2, children on F1: legal, but not schema-ordered.
        inner = b.node("F1").edge("0-4", ACCEPT).otherwise(DISCARD)
        root = b.node("F2").edge("0-4", inner).otherwise(DISCARD)
        designed = b.finish(root)
        assert not designed.is_ordered()
        ordered = reorder_fdd(designed)
        assert ordered.is_ordered()
        for packet in enumerate_universe(SCHEMA):
            assert ordered.evaluate(packet) == designed.evaluate(packet)
