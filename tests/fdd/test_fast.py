"""Cross-validation of the scalable engine against the reference pipeline."""

from hypothesis import given, settings

from repro.fdd import compare_firewalls, construct_fdd
from repro.fdd.fast import (
    HashConsStore,
    build_difference,
    compare_fast,
    construct_fdd_fast,
)
from repro.fields import enumerate_universe, toy_schema
from repro.intervals import IntervalSet
from repro.policy import ACCEPT, DISCARD, Firewall, Rule
from repro.synth import SyntheticFirewallGenerator, team_a_firewall, team_b_firewall

from tests.conftest import brute_force_diff, covered_packets, firewalls

SCHEMA = toy_schema(9, 9)


def r(decision, **conjuncts):
    return Rule.build(SCHEMA, decision, **conjuncts)


class TestHashConsStore:
    def test_terminals_interned(self):
        store = HashConsStore()
        assert store.terminal(ACCEPT) is store.terminal(ACCEPT)
        assert store.terminal(ACCEPT) is not store.terminal(DISCARD)

    def test_internals_interned(self):
        store = HashConsStore()
        t = store.terminal(ACCEPT)
        a = store.internal(0, [(IntervalSet.span(0, 9), t)])
        b = store.internal(0, [(IntervalSet.span(0, 9), t)])
        assert a is b

    def test_parallel_edges_merged(self):
        store = HashConsStore()
        t = store.terminal(ACCEPT)
        node = store.internal(
            0, [(IntervalSet.span(0, 4), t), (IntervalSet.span(5, 9), t)]
        )
        assert len(node.edges) == 1
        assert node.edges[0].label == IntervalSet.span(0, 9)


class TestConstructFast:
    @given(firewalls(SCHEMA, max_rules=6, include_log=True))
    @settings(max_examples=50, deadline=None)
    def test_matches_firewall_semantics(self, firewall):
        fdd = construct_fdd_fast(firewall)
        fdd.validate()
        assert fdd.is_ordered()
        for packet in enumerate_universe(SCHEMA):
            assert fdd.evaluate(packet) == firewall(packet)

    @given(firewalls(SCHEMA, max_rules=5))
    @settings(max_examples=30, deadline=None)
    def test_matches_reference_construction(self, firewall):
        fast = construct_fdd_fast(firewall)
        reference = construct_fdd(firewall)
        for packet in enumerate_universe(SCHEMA):
            assert fast.evaluate(packet) == reference.evaluate(packet)

    def test_sharing_actually_happens(self):
        generator = SyntheticFirewallGenerator(seed=11)
        firewall = generator.generate(60)
        fast = construct_fdd_fast(firewall)
        stats = fast.stats()
        # A 60-rule five-field policy with per-path replication would need
        # orders of magnitude more nodes than paths-with-sharing.
        assert stats.nodes < stats.paths


class TestCompareFast:
    @given(firewalls(SCHEMA, max_rules=4), firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=40, deadline=None)
    def test_difference_fdd_exact(self, fw_a, fw_b):
        diff = compare_fast(fw_a, fw_b)
        expected = brute_force_diff(fw_a, fw_b)
        assert diff.disputed_packet_count() == len(expected)
        assert covered_packets(diff.discrepancies()) == expected
        for packet in enumerate_universe(SCHEMA):
            dec_a, dec_b = diff.evaluate(packet)
            assert dec_a == fw_a(packet) and dec_b == fw_b(packet)

    @given(firewalls(SCHEMA, max_rules=4), firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=30, deadline=None)
    def test_agrees_with_reference_pipeline(self, fw_a, fw_b):
        reference = compare_firewalls(fw_a, fw_b)
        fast = compare_fast(fw_a, fw_b)
        assert sum(d.size() for d in reference) == fast.disputed_packet_count()

    def test_paper_example(self):
        diff = compare_fast(team_a_firewall(), team_b_firewall())
        reference = compare_firewalls(team_a_firewall(), team_b_firewall())
        assert diff.disputed_packet_count() == sum(d.size() for d in reference)
        assert not diff.disputed_packet_count() == 0

    def test_same_outcome_cells_merge(self):
        # Three separate discard rules with one shared outcome collapse to
        # a single difference region — sharing at work.
        fw_a = Firewall(SCHEMA, [r(ACCEPT)])
        fw_b = Firewall(
            SCHEMA,
            [r(DISCARD, F1="0"), r(DISCARD, F1="2"), r(DISCARD, F1="4"), r(ACCEPT)],
        )
        diff = compare_fast(fw_a, fw_b)
        cells = diff.discrepancies()
        assert len(cells) == 1
        assert cells[0].sets[0] == IntervalSet.of(0, 2, 4)

    def test_discrepancy_limit(self):
        from repro.policy import ACCEPT_LOG

        fw_a = Firewall(SCHEMA, [r(ACCEPT)])
        fw_b = Firewall(
            SCHEMA,
            [r(DISCARD, F1="0-2"), r(ACCEPT_LOG, F1="5-6"), r(ACCEPT)],
        )
        diff = compare_fast(fw_a, fw_b)
        assert len(diff.discrepancies()) == 2
        assert len(diff.discrepancies(limit=1)) == 1

    def test_build_difference_on_prebuilt(self):
        fw_a = Firewall(SCHEMA, [r(ACCEPT)])
        fw_b = Firewall(SCHEMA, [r(DISCARD, F2="1-3"), r(ACCEPT)])
        diff = build_difference(construct_fdd_fast(fw_a), construct_fdd_fast(fw_b))
        assert diff.disputed_packet_count() == 30

    def test_synthetic_cross_validation(self):
        from repro.synth import generate_firewall_pair

        fw_a, fw_b = generate_firewall_pair(30, seed=4)
        reference = compare_firewalls(fw_a, fw_b)
        fast = compare_fast(fw_a, fw_b)
        assert sum(d.size() for d in reference) == fast.disputed_packet_count()

    def test_path_and_node_counts(self):
        fw_a = Firewall(SCHEMA, [r(ACCEPT)])
        fw_b = Firewall(SCHEMA, [r(DISCARD, F1="2-4"), r(ACCEPT)])
        diff = compare_fast(fw_a, fw_b)
        assert diff.path_count() >= 2
        assert diff.node_count() >= 1
