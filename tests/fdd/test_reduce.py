"""Tests for FDD reduction (isomorphic-subgraph merging, [12])."""

from hypothesis import given, settings

from repro.fdd import construct_fdd, make_simple, reduce_fdd
from repro.fdd.node import InternalNode, count_nodes_edges, iter_nodes
from repro.fields import enumerate_universe, toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Rule

from tests.conftest import firewalls

SCHEMA = toy_schema(9, 9)


def r(decision, **conjuncts):
    return Rule.build(SCHEMA, decision, **conjuncts)


class TestReduce:
    def test_semantics_preserved(self):
        firewall = Firewall(
            SCHEMA, [r(DISCARD, F1="2-4", F2="1-3"), r(ACCEPT, F1="0-6"), r(DISCARD)]
        )
        fdd = construct_fdd(firewall)
        reduced = reduce_fdd(fdd)
        reduced.validate()
        for packet in enumerate_universe(SCHEMA):
            assert reduced.evaluate(packet) == firewall(packet)

    def test_shrinks_replicated_tree(self):
        # Simplifying explodes the diagram into a tree; reduction must
        # fold the replicas back together.
        firewall = Firewall(
            SCHEMA, [r(DISCARD, F1="0-1, 4-5, 8-9"), r(ACCEPT)]
        )
        tree = make_simple(construct_fdd(firewall))
        reduced = reduce_fdd(tree)
        nodes_before, _ = count_nodes_edges(tree.root)
        nodes_after, _ = count_nodes_edges(reduced.root)
        assert nodes_after < nodes_before

    def test_merges_parallel_edges(self):
        # F1 in {0-1, 8-9} -> same subtree twice after simplify; reduce
        # merges both the subtrees and the edges into one interval set.
        firewall = Firewall(SCHEMA, [r(DISCARD, F1="0-1, 8-9"), r(ACCEPT)])
        reduced = reduce_fdd(make_simple(construct_fdd(firewall)))
        root = reduced.root
        assert isinstance(root, InternalNode)
        assert len(root.edges) == 2  # {0-1, 8-9} -> discard; rest -> accept

    def test_idempotent(self):
        firewall = Firewall(SCHEMA, [r(DISCARD, F1="2-4"), r(ACCEPT)])
        once = reduce_fdd(construct_fdd(firewall))
        twice = reduce_fdd(once)
        assert count_nodes_edges(once.root) == count_nodes_edges(twice.root)

    def test_no_isomorphic_siblings_remain(self):
        firewall = Firewall(
            SCHEMA, [r(DISCARD, F1="0-2", F2="0-2"), r(DISCARD, F1="7-9", F2="0-2"), r(ACCEPT)]
        )
        reduced = reduce_fdd(construct_fdd(firewall))
        # Count terminals per decision: at most one shared instance each.
        from repro.fdd.node import TerminalNode

        terminals = [n for n in iter_nodes(reduced.root) if isinstance(n, TerminalNode)]
        decisions = [t.decision for t in terminals]
        assert len(decisions) == len(set(decisions))

    @given(firewalls(SCHEMA, max_rules=5))
    @settings(max_examples=30, deadline=None)
    def test_reduction_property(self, firewall):
        fdd = construct_fdd(firewall)
        reduced = reduce_fdd(fdd)
        reduced.validate()
        nodes_before, _ = count_nodes_edges(fdd.root)
        nodes_after, _ = count_nodes_edges(reduced.root)
        assert nodes_after <= nodes_before
        for packet in list(enumerate_universe(SCHEMA))[::5]:
            assert reduced.evaluate(packet) == firewall(packet)
