"""Tests for the comparison algorithm (Section 5) — soundness AND
completeness against brute-force enumeration."""

import pytest
from hypothesis import given, settings

from repro.exceptions import NotSemiIsomorphicError, SchemaError
from repro.fdd import (
    compare_direct,
    compare_firewalls,
    compare_shaped,
    construct_fdd,
)
from repro.fields import toy_schema
from repro.policy import ACCEPT, ACCEPT_LOG, DISCARD, Firewall, Rule
from repro.synth import team_a_firewall, team_b_firewall

from tests.conftest import brute_force_diff, covered_packets, firewalls

SCHEMA = toy_schema(9, 9)


def r(decision, **conjuncts):
    return Rule.build(SCHEMA, decision, **conjuncts)


class TestCompareFirewalls:
    def test_equivalent_firewalls_no_discrepancies(self):
        fw_a = Firewall(SCHEMA, [r(ACCEPT, F1="0-3"), r(DISCARD)])
        fw_b = Firewall(SCHEMA, [r(DISCARD, F1="4-9"), r(ACCEPT)])
        assert compare_firewalls(fw_a, fw_b) == []

    def test_single_region(self):
        fw_a = Firewall(SCHEMA, [r(ACCEPT)])
        fw_b = Firewall(SCHEMA, [r(DISCARD, F1="2-4"), r(ACCEPT)])
        discs = compare_firewalls(fw_a, fw_b)
        assert covered_packets(discs) == brute_force_diff(fw_a, fw_b)
        for disc in discs:
            assert disc.decision_a == ACCEPT and disc.decision_b == DISCARD

    def test_multiple_decisions(self):
        fw_a = Firewall(SCHEMA, [r(ACCEPT_LOG, F1="0-3"), r(DISCARD)])
        fw_b = Firewall(SCHEMA, [r(ACCEPT, F1="0-3"), r(DISCARD)])
        discs = compare_firewalls(fw_a, fw_b)
        assert covered_packets(discs) == brute_force_diff(fw_a, fw_b)
        assert all(d.decision_a == ACCEPT_LOG for d in discs)

    def test_discrepancy_regions_disjoint(self):
        fw_a = Firewall(SCHEMA, [r(ACCEPT, F1="0-5"), r(DISCARD)])
        fw_b = Firewall(SCHEMA, [r(DISCARD, F2="0-5"), r(ACCEPT)])
        discs = compare_firewalls(fw_a, fw_b)
        total = sum(d.size() for d in discs)
        assert total == len(covered_packets(discs))  # no double counting

    def test_schema_mismatch(self):
        other = toy_schema(9, 9, 9)
        with pytest.raises(SchemaError):
            compare_firewalls(
                Firewall(SCHEMA, [r(ACCEPT)]),
                Firewall(other, [Rule.build(other, ACCEPT)]),
            )

    def test_paper_example_disputed_set(self):
        discs = compare_firewalls(team_a_firewall(), team_b_firewall())
        assert discs  # teams disagree
        # Every discrepancy has Team A accepting and Team B discarding.
        assert {(d.decision_a.name, d.decision_b.name) for d in discs} == {
            ("accept", "discard")
        }

    @given(firewalls(SCHEMA, max_rules=4), firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=40, deadline=None)
    def test_sound_and_complete(self, fw_a, fw_b):
        """The paper's central claim: ALL discrepancies, and only real ones."""
        discs = compare_firewalls(fw_a, fw_b)
        assert covered_packets(discs) == brute_force_diff(fw_a, fw_b)
        for disc in discs:
            packet = tuple(values.min() for values in disc.sets)
            assert fw_a(packet) == disc.decision_a
            assert fw_b(packet) == disc.decision_b

    @given(firewalls(toy_schema(5, 5, 5), max_rules=4, include_log=True))
    @settings(max_examples=25, deadline=None)
    def test_self_comparison_empty(self, firewall):
        assert compare_firewalls(firewall, firewall) == []


class TestCompareShaped:
    def test_requires_semi_isomorphic(self):
        fa = construct_fdd(Firewall(SCHEMA, [r(ACCEPT, F1="0-4"), r(DISCARD)]))
        fb = construct_fdd(Firewall(SCHEMA, [r(ACCEPT)]))
        with pytest.raises(NotSemiIsomorphicError):
            compare_shaped(fa, fb)


class TestCompareDirect:
    @given(firewalls(SCHEMA, max_rules=4), firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_pipeline(self, fw_a, fw_b):
        direct = compare_direct(fw_a, fw_b)
        assert covered_packets(direct) == brute_force_diff(fw_a, fw_b)

    def test_paper_example_agrees(self):
        pipeline = compare_firewalls(team_a_firewall(), team_b_firewall())
        direct = compare_direct(team_a_firewall(), team_b_firewall())
        assert sum(d.size() for d in pipeline) == sum(d.size() for d in direct)
