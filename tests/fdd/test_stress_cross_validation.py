"""Seeded cross-validation sweeps: both engines, realistic schema, many
workloads.  Complements the hypothesis properties (which use toy
schemas) with the full five-field schema at moderate sizes."""

import pytest

from repro.fdd import compare_direct, compare_firewalls, construct_fdd
from repro.fdd.fast import compare_fast, construct_fdd_fast
from repro.fields import PacketSampler
from repro.synth import (
    BoundaryTraceGenerator,
    GeneratorConfig,
    SyntheticFirewallGenerator,
    generate_firewall_pair,
    perturb,
)


@pytest.mark.parametrize("seed", [101, 202, 303, 404, 505])
def test_engines_agree_on_perturbed_pairs(seed):
    firewall = SyntheticFirewallGenerator(seed=seed).generate(30)
    other, _ = perturb(firewall, 0.3, seed=seed + 1)
    reference = sum(d.size() for d in compare_firewalls(firewall, other))
    fused = sum(d.size() for d in compare_direct(firewall, other))
    fast = compare_fast(firewall, other).disputed_packet_count()
    assert reference == fused == fast


@pytest.mark.parametrize("seed", [11, 22, 33])
def test_engines_agree_on_independent_pairs(seed):
    fw_a, fw_b = generate_firewall_pair(20, seed=seed)
    reference = sum(d.size() for d in compare_firewalls(fw_a, fw_b))
    fast = compare_fast(fw_a, fw_b).disputed_packet_count()
    assert reference == fast


@pytest.mark.parametrize("seed", [7, 17, 27, 37])
def test_constructions_agree_pointwise(seed):
    firewall = SyntheticFirewallGenerator(seed=seed).generate(50)
    reference = construct_fdd(firewall)
    fast = construct_fdd_fast(firewall)
    sampler = PacketSampler(firewall.schema, seed=seed)
    boundary = BoundaryTraceGenerator(firewall, seed=seed)
    for packet in sampler.uniform_many(150) + boundary.packets(150):
        expected = firewall(packet)
        assert reference.evaluate(packet) == expected
        assert fast.evaluate(packet) == expected


def test_extreme_generator_configs():
    """Degenerate mixes (all wildcards / no wildcards) still validate."""
    for config in (
        GeneratorConfig(src_wildcard_p=1.0, dst_wildcard_p=1.0,
                        src_port_wildcard_p=1.0, dst_port_wildcard_p=1.0),
        GeneratorConfig(src_wildcard_p=0.0, dst_wildcard_p=0.0,
                        src_port_wildcard_p=0.0, dst_port_wildcard_p=0.0,
                        host_p=1.0),
    ):
        firewall = SyntheticFirewallGenerator(config, seed=1).generate(20)
        fdd = construct_fdd_fast(firewall)
        fdd.validate()
        sampler = PacketSampler(firewall.schema, seed=2)
        for packet in sampler.uniform_many(50):
            assert fdd.evaluate(packet) == firewall(packet)


def test_difference_fdd_region_sizes_sum():
    """Enumerated discrepancy sizes must sum to the counted total."""
    fw_a, fw_b = generate_firewall_pair(25, seed=99)
    diff = compare_fast(fw_a, fw_b)
    cells = diff.discrepancies()
    total = 0
    for cell in cells:
        size = 1
        for values in cell.sets:
            size *= values.count()
        total += size
    assert total == diff.disputed_packet_count()
