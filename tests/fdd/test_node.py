"""Unit tests for FDD nodes and edges."""

import pytest

from repro.exceptions import FDDError
from repro.fdd.node import Edge, InternalNode, TerminalNode, count_nodes_edges, iter_nodes
from repro.intervals import IntervalSet
from repro.policy import ACCEPT, DISCARD


def chain():
    """A tiny two-level diagram used across tests."""
    leaf_a = TerminalNode(ACCEPT)
    leaf_d = TerminalNode(DISCARD)
    inner = InternalNode(1)
    inner.add_edge(IntervalSet.of((0, 4)), leaf_a)
    inner.add_edge(IntervalSet.of((5, 9)), leaf_d)
    root = InternalNode(0)
    root.add_edge(IntervalSet.of((0, 9)), inner)
    return root, inner, leaf_a, leaf_d


class TestBasics:
    def test_terminal(self):
        t = TerminalNode(ACCEPT)
        assert t.is_terminal()
        clone = t.clone()
        assert clone is not t and clone.decision == ACCEPT

    def test_empty_edge_label_rejected(self):
        with pytest.raises(FDDError):
            Edge(IntervalSet.empty(), TerminalNode(ACCEPT))

    def test_covered_union(self):
        _, inner, _, _ = chain()
        assert inner.covered() == IntervalSet.span(0, 9)

    def test_child_for(self):
        _, inner, leaf_a, leaf_d = chain()
        assert inner.child_for(3) is leaf_a
        assert inner.child_for(7) is leaf_d

    def test_child_for_uncovered_raises(self):
        inner = InternalNode(0)
        inner.add_edge(IntervalSet.of((0, 4)), TerminalNode(ACCEPT))
        with pytest.raises(FDDError):
            inner.child_for(7)

    def test_sort_edges(self):
        inner = InternalNode(0)
        inner.add_edge(IntervalSet.of((5, 9)), TerminalNode(ACCEPT))
        inner.add_edge(IntervalSet.of((0, 4)), TerminalNode(DISCARD))
        inner.sort_edges()
        assert inner.edges[0].label.min() == 0


class TestClone:
    def test_clone_is_deep(self):
        root, inner, leaf_a, _ = chain()
        copy = root.clone()
        assert copy is not root
        copy_inner = copy.edges[0].target
        assert copy_inner is not inner
        # Mutating the copy leaves the original untouched.
        copy_inner.edges[0].target.decision = DISCARD
        assert leaf_a.decision == ACCEPT

    def test_clone_preserves_sharing(self):
        shared = TerminalNode(ACCEPT)
        root = InternalNode(0)
        root.add_edge(IntervalSet.of((0, 4)), shared)
        root.add_edge(IntervalSet.of((5, 9)), shared)
        copy = root.clone()
        assert copy.edges[0].target is copy.edges[1].target

    def test_clone_preserves_diamond(self):
        bottom = TerminalNode(ACCEPT)
        mid = InternalNode(1)
        mid.add_edge(IntervalSet.of((0, 9)), bottom)
        root = InternalNode(0)
        root.add_edge(IntervalSet.of((0, 4)), mid)
        root.add_edge(IntervalSet.of((5, 9)), mid)
        copy = root.clone()
        assert copy.edges[0].target is copy.edges[1].target
        nodes, edges = count_nodes_edges(copy)
        assert (nodes, edges) == (3, 3)


class TestTraversal:
    def test_iter_nodes_unique(self):
        root, *_ = chain()
        nodes = list(iter_nodes(root))
        assert len(nodes) == len({id(n) for n in nodes}) == 4

    def test_count_nodes_edges(self):
        root, *_ = chain()
        assert count_nodes_edges(root) == (4, 3)
