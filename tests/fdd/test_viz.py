"""Tests for FDD visualization (DOT and ASCII)."""

from repro.fdd import construct_fdd, reduce_fdd
from repro.fdd.viz import to_ascii, to_dot
from repro.fields import toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Rule
from repro.synth import team_a_firewall

SCHEMA = toy_schema(9, 9)


def sample_fdd():
    return construct_fdd(
        Firewall(
            SCHEMA,
            [Rule.build(SCHEMA, DISCARD, F1="2-4", F2="0-5"), Rule.build(SCHEMA, ACCEPT)],
        )
    )


class TestDot:
    def test_well_formed(self):
        dot = to_dot(sample_fdd())
        assert dot.startswith("digraph FDD {")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") >= 4

    def test_title(self):
        dot = to_dot(sample_fdd(), title="Fig. 2")
        assert 'label="Fig. 2"' in dot

    def test_terminal_styling(self):
        dot = to_dot(sample_fdd())
        assert "palegreen" in dot  # accept terminals
        assert "lightcoral" in dot  # discard terminals

    def test_field_symbols(self):
        dot = to_dot(construct_fdd(team_a_firewall()))
        for symbol in ("I", "S", "D", "N", "P"):
            assert f'label="{symbol}"' in dot

    def test_shared_nodes_render_once(self):
        fdd = reduce_fdd(sample_fdd())
        dot = to_dot(fdd)
        # Reduced diagram: one accept terminal, one discard terminal.
        assert dot.count("palegreen") == 1
        assert dot.count("lightcoral") == 1

    def test_quote_escaping(self):
        dot = to_dot(sample_fdd())
        # Labels must not contain raw double quotes inside quoted strings.
        for line in dot.splitlines():
            assert line.count('"') % 2 == 0


class TestAscii:
    def test_tree_shape(self):
        text = to_ascii(sample_fdd())
        lines = text.splitlines()
        assert lines[0] == "F1"
        assert any("[accept]" in line for line in lines)
        assert any("[discard]" in line for line in lines)
        assert any(line.startswith(("+- ", "`- ")) for line in lines)

    def test_long_labels_truncated(self):
        text = to_ascii(construct_fdd(team_a_firewall()), max_label=20)
        for line in text.splitlines():
            # connector + label + arrow; the label part is bounded.
            if " -> " in line:
                label = line.split(" -> ")[0]
                assert len(label) < 120

    def test_shared_subgraph_cited_not_duplicated(self):
        fdd = reduce_fdd(
            construct_fdd(
                Firewall(
                    SCHEMA,
                    [
                        Rule.build(SCHEMA, DISCARD, F1="0-1, 8-9", F2="0-5"),
                        Rule.build(SCHEMA, ACCEPT),
                    ],
                )
            )
        )
        text = to_ascii(fdd)
        if "#1" in text:
            assert "see #1" in text

    def test_paper_example_renders(self):
        text = to_ascii(construct_fdd(team_a_firewall()))
        assert "224.168.0.0/16" in text
        assert "I" == text.splitlines()[0]
