"""Theorem 1: the constructed FDD has at most (2n-1)^d decision paths
for n simple rules over d fields."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fdd import construct_fdd
from repro.fields import toy_schema
from repro.intervals import Interval, IntervalSet
from repro.policy import ACCEPT, DISCARD, Firewall, Predicate, Rule


def simple_firewalls(schema, max_rules=5):
    """Random firewalls whose every rule is simple (one interval/field)."""

    def interval(max_value):
        return st.tuples(
            st.integers(min_value=0, max_value=max_value),
            st.integers(min_value=0, max_value=max_value),
        ).map(lambda p: IntervalSet([Interval(min(p), max(p))]))

    rule = st.builds(
        Rule,
        st.tuples(*(interval(f.max_value) for f in schema)).map(
            lambda sets: Predicate(schema, sets)
        ),
        st.sampled_from([ACCEPT, DISCARD]),
    )

    def build(body):
        return Firewall(
            schema, body + [Rule(Predicate.match_all(schema), DISCARD)]
        )

    return st.lists(rule, min_size=0, max_size=max_rules - 1).map(build)


SCHEMA2 = toy_schema(15, 15)
SCHEMA3 = toy_schema(7, 7, 7)


class TestTheorem1:
    @given(simple_firewalls(SCHEMA2))
    @settings(max_examples=60, deadline=None)
    def test_bound_two_fields(self, firewall):
        n = len(firewall)
        d = len(firewall.schema)
        fdd = construct_fdd(firewall)
        assert fdd.count_paths() <= (2 * n - 1) ** d

    @given(simple_firewalls(SCHEMA3, max_rules=4))
    @settings(max_examples=30, deadline=None)
    def test_bound_three_fields(self, firewall):
        n = len(firewall)
        d = len(firewall.schema)
        fdd = construct_fdd(firewall)
        assert fdd.count_paths() <= (2 * n - 1) ** d

    def test_bound_is_approachable(self):
        """Nested distinct intervals force many splits per field — the
        path count grows toward (not past) the bound."""
        schema = toy_schema(31, 31)
        rules = []
        for k in range(4):
            rules.append(
                Rule.build(
                    schema,
                    ACCEPT if k % 2 else DISCARD,
                    F1=f"{4 + 3 * k}-{25 - 3 * k}",
                    F2=f"{4 + 3 * k}-{25 - 3 * k}",
                )
            )
        rules.append(Rule.build(schema, DISCARD))
        firewall = Firewall(schema, rules)
        fdd = construct_fdd(firewall)
        n, d = len(firewall), 2
        assert 9 <= fdd.count_paths() <= (2 * n - 1) ** d
