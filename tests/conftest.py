"""Shared fixtures and hypothesis strategies for the test suite.

The central testing idea mirrors the paper's own correctness argument:
for *small* schemas every algorithm can be checked against brute force
(enumerate or sample packets, evaluate the rule list directly), so the
suite generates random firewalls over toy schemas and verifies each
pipeline stage preserves exact semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.fields import FieldSchema, toy_schema
from repro.intervals import Interval, IntervalSet
from repro.policy import ACCEPT, ACCEPT_LOG, DISCARD, DISCARD_LOG, Firewall, Predicate, Rule

# ----------------------------------------------------------------------
# Plain fixtures
# ----------------------------------------------------------------------


@pytest.fixture
def schema2() -> FieldSchema:
    """Two tiny fields: enough for most algebraic tests."""
    return toy_schema(15, 15)


@pytest.fixture
def schema3() -> FieldSchema:
    """Three tiny fields: exercises field-skipping and deeper diagrams."""
    return toy_schema(9, 9, 9)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------


def intervals(max_value: int) -> st.SearchStrategy[Interval]:
    """A random interval within ``[0, max_value]``."""
    return st.tuples(
        st.integers(min_value=0, max_value=max_value),
        st.integers(min_value=0, max_value=max_value),
    ).map(lambda pair: Interval(min(pair), max(pair)))


def interval_sets(max_value: int, max_intervals: int = 3) -> st.SearchStrategy[IntervalSet]:
    """A random non-empty interval set within ``[0, max_value]``."""
    return st.lists(
        intervals(max_value), min_size=1, max_size=max_intervals
    ).map(IntervalSet)


def predicates(schema: FieldSchema) -> st.SearchStrategy[Predicate]:
    """A random predicate over ``schema`` (non-empty on every field)."""
    return st.tuples(
        *(interval_sets(field.max_value) for field in schema)
    ).map(lambda sets: Predicate(schema, sets))


def decisions(include_log: bool = False) -> st.SearchStrategy:
    options = [ACCEPT, DISCARD]
    if include_log:
        options += [ACCEPT_LOG, DISCARD_LOG]
    return st.sampled_from(options)


def rules(schema: FieldSchema, include_log: bool = False) -> st.SearchStrategy[Rule]:
    return st.builds(Rule, predicates(schema), decisions(include_log))


def firewalls(
    schema: FieldSchema,
    max_rules: int = 5,
    include_log: bool = False,
) -> st.SearchStrategy[Firewall]:
    """A random comprehensive firewall: random rules plus a catch-all."""

    def build(items: tuple[list[Rule], object]) -> Firewall:
        body, default = items
        catchall = Rule(Predicate.match_all(schema), default)
        return Firewall(schema, body + [catchall])

    return st.tuples(
        st.lists(rules(schema, include_log), min_size=0, max_size=max_rules),
        decisions(include_log),
    ).map(build)


# ----------------------------------------------------------------------
# Brute-force oracles
# ----------------------------------------------------------------------


def brute_force_diff(fw_a: Firewall, fw_b: Firewall) -> set[tuple[int, ...]]:
    """All packets (enumerated) on which two small firewalls disagree."""
    from repro.fields import enumerate_universe

    return {
        tuple(packet)
        for packet in enumerate_universe(fw_a.schema)
        if fw_a(packet) != fw_b(packet)
    }


def covered_packets(discrepancies) -> set[tuple[int, ...]]:
    """Expand a discrepancy list into its packet set (small schemas only)."""
    out: set[tuple[int, ...]] = set()
    for disc in discrepancies:
        def rec(index: int, prefix: tuple[int, ...]):
            if index == len(disc.sets):
                out.add(prefix)
                return
            for value in disc.sets[index]:
                rec(index + 1, prefix + (value,))

        rec(0, ())
    return out
