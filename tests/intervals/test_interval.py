"""Unit tests for :class:`repro.intervals.interval.Interval`."""

import pytest
from hypothesis import given

from repro.exceptions import IntervalError
from repro.intervals import Interval

from tests.conftest import intervals


class TestConstruction:
    def test_valid_interval(self):
        iv = Interval(2, 5)
        assert iv.lo == 2 and iv.hi == 5

    def test_single_point(self):
        assert Interval(7, 7).is_single()

    def test_empty_interval_rejected(self):
        with pytest.raises(IntervalError):
            Interval(5, 2)

    def test_negative_rejected(self):
        with pytest.raises(IntervalError):
            Interval(-1, 5)

    def test_non_integer_rejected(self):
        with pytest.raises(IntervalError):
            Interval(1.5, 5)  # type: ignore[arg-type]

    def test_immutable(self):
        iv = Interval(1, 2)
        with pytest.raises(AttributeError):
            iv.lo = 0  # type: ignore[misc]


class TestQueries:
    def test_len_and_iter(self):
        iv = Interval(3, 6)
        assert len(iv) == 4
        assert list(iv) == [3, 4, 5, 6]

    def test_contains(self):
        iv = Interval(3, 6)
        assert 3 in iv and 6 in iv
        assert 2 not in iv and 7 not in iv

    def test_ordering(self):
        assert Interval(1, 4) < Interval(2, 3)
        assert Interval(1, 3) < Interval(1, 4)


class TestRelations:
    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(5, 9))
        assert not Interval(0, 4).overlaps(Interval(5, 9))

    def test_touches_adjacent(self):
        assert Interval(0, 4).touches(Interval(5, 9))
        assert not Interval(0, 3).touches(Interval(5, 9))

    def test_contains_interval(self):
        assert Interval(0, 9).contains_interval(Interval(2, 5))
        assert not Interval(2, 5).contains_interval(Interval(0, 9))

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 2).intersect(Interval(3, 9)) is None

    def test_subtract_middle_hole(self):
        assert Interval(0, 9).subtract(Interval(3, 5)) == (
            Interval(0, 2),
            Interval(6, 9),
        )

    def test_subtract_disjoint(self):
        assert Interval(0, 2).subtract(Interval(5, 9)) == (Interval(0, 2),)

    def test_subtract_total(self):
        assert Interval(3, 5).subtract(Interval(0, 9)) == ()

    def test_merge(self):
        assert Interval(0, 4).merge(Interval(5, 9)) == Interval(0, 9)

    def test_merge_non_touching_rejected(self):
        with pytest.raises(IntervalError):
            Interval(0, 3).merge(Interval(5, 9))

    def test_split_at(self):
        assert Interval(0, 9).split_at(4) == (Interval(0, 4), Interval(5, 9))

    def test_split_at_bounds_rejected(self):
        with pytest.raises(IntervalError):
            Interval(0, 9).split_at(9)
        with pytest.raises(IntervalError):
            Interval(3, 9).split_at(2)


class TestProperties:
    @given(intervals(100), intervals(100))
    def test_intersection_symmetric(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(intervals(100), intervals(100))
    def test_subtract_disjoint_from_subtrahend(self, a, b):
        for piece in a.subtract(b):
            assert not piece.overlaps(b)

    @given(intervals(100), intervals(100))
    def test_subtract_preserves_membership(self, a, b):
        kept = set()
        for piece in a.subtract(b):
            kept.update(piece)
        assert kept == set(a) - set(b)

    @given(intervals(50))
    def test_split_rejoins(self, iv):
        if iv.is_single():
            return
        left, right = iv.split_at(iv.lo)
        assert left.merge(right) == iv

    def test_str_forms(self):
        assert str(Interval(5, 5)) == "5"
        assert str(Interval(2, 5)) == "[2, 5]"
