"""Unit and property tests for :class:`repro.intervals.IntervalSet`."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import IntervalError
from repro.intervals import Interval, IntervalSet
from repro.intervals.intervalset import checkpoints

from tests.conftest import interval_sets


class TestCanonicalization:
    def test_merges_touching(self):
        s = IntervalSet.of((0, 4), (5, 9))
        assert s.intervals == (Interval(0, 9),)

    def test_merges_overlapping(self):
        s = IntervalSet.of((0, 6), (4, 9))
        assert s.intervals == (Interval(0, 9),)

    def test_keeps_gaps(self):
        s = IntervalSet.of((0, 3), (5, 9))
        assert len(s.intervals) == 2

    def test_sorts(self):
        s = IntervalSet.of((8, 9), (0, 1))
        assert s.intervals == (Interval(0, 1), Interval(8, 9))

    def test_equality_is_canonical(self):
        assert IntervalSet.of((0, 4), (5, 9)) == IntervalSet.of((0, 9))
        assert hash(IntervalSet.of((0, 4), (5, 9))) == hash(IntervalSet.of((0, 9)))

    def test_from_values(self):
        s = IntervalSet.from_values([5, 3, 4, 9])
        assert s == IntervalSet.of((3, 5), 9)


class TestQueries:
    def test_membership_binary_search(self):
        s = IntervalSet.of((0, 3), (10, 12), (20, 29))
        for member in (0, 3, 11, 25, 29):
            assert member in s
        for non_member in (4, 9, 13, 30):
            assert non_member not in s

    def test_count_vs_len(self):
        s = IntervalSet.of((0, 3), (10, 12))
        assert len(s) == 2  # component intervals
        assert s.count() == 7  # cardinality

    def test_min_max(self):
        s = IntervalSet.of((5, 9), (20, 21))
        assert s.min() == 5 and s.max() == 21

    def test_min_empty_raises(self):
        with pytest.raises(IntervalError):
            IntervalSet.empty().min()

    def test_iteration(self):
        assert list(IntervalSet.of((0, 2), 5)) == [0, 1, 2, 5]

    def test_bool(self):
        assert IntervalSet.of((0, 1))
        assert not IntervalSet.empty()

    def test_sample_in_set(self):
        rng = random.Random(0)
        s = IntervalSet.of((0, 3), (100, 120))
        for _ in range(50):
            assert s.sample(rng) in s

    def test_sample_empty_raises(self):
        with pytest.raises(IntervalError):
            IntervalSet.empty().sample(random.Random(0))


class TestAlgebra:
    def test_union(self):
        assert IntervalSet.of((0, 3)) | IntervalSet.of((2, 9)) == IntervalSet.of((0, 9))

    def test_intersect(self):
        a = IntervalSet.of((0, 5), (10, 15))
        b = IntervalSet.of((4, 11))
        assert (a & b) == IntervalSet.of((4, 5), (10, 11))

    def test_subtract(self):
        a = IntervalSet.of((0, 9))
        b = IntervalSet.of((2, 3), (7, 8))
        assert (a - b) == IntervalSet.of((0, 1), (4, 6), 9)

    def test_subtract_everything(self):
        assert (IntervalSet.of((3, 5)) - IntervalSet.of((0, 9))).is_empty()

    def test_complement(self):
        universe = IntervalSet.span(0, 9)
        assert IntervalSet.of((2, 4)).complement(universe) == IntervalSet.of((0, 1), (5, 9))

    def test_issubset(self):
        assert IntervalSet.of((2, 3), 7).issubset(IntervalSet.of((0, 9)))
        assert not IntervalSet.of((2, 11)).issubset(IntervalSet.of((0, 9)))

    def test_isdisjoint(self):
        assert IntervalSet.of((0, 3)).isdisjoint(IntervalSet.of((4, 9)))
        assert not IntervalSet.of((0, 4)).isdisjoint(IntervalSet.of((4, 9)))


class TestProperties:
    @given(interval_sets(60), interval_sets(60))
    def test_union_matches_set_semantics(self, a, b):
        assert set(a | b) == set(a) | set(b)

    @given(interval_sets(60), interval_sets(60))
    def test_intersection_matches_set_semantics(self, a, b):
        assert set(a & b) == set(a) & set(b)

    @given(interval_sets(60), interval_sets(60))
    def test_difference_matches_set_semantics(self, a, b):
        assert set(a - b) == set(a) - set(b)

    @given(interval_sets(60), interval_sets(60))
    def test_de_morgan(self, a, b):
        universe = IntervalSet.span(0, 60)
        left = universe - (a | b)
        right = (universe - a) & (universe - b)
        assert left == right

    @given(interval_sets(60))
    def test_canonical_form_invariants(self, s):
        previous_hi = -2
        for iv in s.intervals:
            assert iv.lo > previous_hi + 1  # disjoint and non-touching
            previous_hi = iv.hi

    @given(interval_sets(60), interval_sets(60))
    def test_subset_iff_subtract_empty(self, a, b):
        assert a.issubset(b) == (a - b).is_empty()

    @given(interval_sets(60), interval_sets(60))
    def test_disjoint_iff_intersection_empty(self, a, b):
        assert a.isdisjoint(b) == (a & b).is_empty()


def test_checkpoints():
    sets = [IntervalSet.of((0, 4), (9, 9)), IntervalSet.of((2, 7))]
    assert checkpoints(sets) == [0, 2, 4, 7, 9]


def test_repr_round_trip():
    s = IntervalSet.of((0, 4), 9)
    assert eval(repr(s)) == s


class TestEnumerationGuards:
    """The O(cardinality) traps are gated (see ``MAX_ENUMERABLE_VALUES``)."""

    def test_small_sets_iterate_normally(self):
        assert list(IntervalSet.of((0, 2), (8, 9))) == [0, 1, 2, 8, 9]

    def test_huge_set_iteration_raises(self):
        from repro.intervals import MAX_ENUMERABLE_VALUES

        huge = IntervalSet.span(0, MAX_ENUMERABLE_VALUES + 5)
        with pytest.raises(IntervalError, match="refusing to iterate"):
            iter(huge)

    def test_huge_interval_iteration_raises(self):
        from repro.intervals import MAX_ENUMERABLE_VALUES

        with pytest.raises(IntervalError, match="refusing to iterate"):
            iter(Interval(0, MAX_ENUMERABLE_VALUES + 5))

    def test_iter_values_is_the_escape_hatch(self):
        from repro.intervals import MAX_ENUMERABLE_VALUES

        huge = IntervalSet.of((0, 2), (10, MAX_ENUMERABLE_VALUES + 100))
        assert list(huge.iter_values(limit=5)) == [0, 1, 2, 10, 11]
        assert list(Interval(3, 10**9).iter_values(limit=3)) == [3, 4, 5]

    def test_iter_values_unlimited_on_small_sets(self):
        s = IntervalSet.of((4, 6),)
        assert list(s.iter_values()) == [4, 5, 6]

    @given(interval_sets(60), st.integers(min_value=0, max_value=10))
    def test_iter_values_limit_is_a_prefix(self, s, limit):
        assert list(s.iter_values(limit=limit)) == list(s)[:limit]
