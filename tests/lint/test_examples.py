"""The shipped demo policy must keep tripping every diagnostic code.

``examples/lint_demo.fw`` doubles as documentation (docs/linting.md) and
as the CI lint-smoke input; if a checker stops firing on it, the demo —
and the smoke test — silently loses coverage.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import all_checks, demo_policy_path, run_lint
from repro.policy import load


def test_demo_policy_exists_in_examples():
    path = Path(demo_policy_path())
    assert path.is_file()
    assert path.parent.name == "examples"


def test_every_code_fires_on_demo():
    report = run_lint(load(demo_policy_path()))
    fired = {d.code for d in report.diagnostics}
    registered = {info.code for info in all_checks()}
    assert fired == registered, (
        f"codes never fired: {sorted(registered - fired)}; "
        f"unregistered codes fired: {sorted(fired - registered)}"
    )


def test_demo_counts_are_stable():
    report = run_lint(load(demo_policy_path()))
    assert len(report.by_code("FW001")) == 1
    assert report.by_code("FW001")[0].rule_index == 5
    assert report.by_code("FW001")[0].related == (2, 3, 4)


def test_demo_diagnostics_carry_source_lines():
    report = run_lint(load(demo_policy_path()))
    for diag in report.diagnostics:
        if diag.rule_index is not None:
            assert diag.line is not None and diag.line >= 1
