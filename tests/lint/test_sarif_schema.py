"""Validate SARIF output against a vendored SARIF 2.1.0 schema subset.

The full OASIS schema lives online; CI cannot fetch it, so a faithful
subset covering every construct ``repro-lint`` emits is vendored next to
this test.  ``jsonschema`` is optional at runtime — the test skips when
the package is absent rather than failing.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

jsonschema = pytest.importorskip("jsonschema")

from repro.lint import demo_policy_path, run_lint, sarif_dict  # noqa: E402
from repro.policy import load  # noqa: E402

SCHEMA_PATH = Path(__file__).resolve().parent / "sarif-2.1.0-subset.schema.json"


@pytest.fixture(scope="module")
def schema() -> dict:
    return json.loads(SCHEMA_PATH.read_text())


@pytest.fixture(scope="module")
def validator(schema):
    cls = jsonschema.validators.validator_for(schema)
    cls.check_schema(schema)
    return cls(schema)


def test_demo_sarif_is_schema_valid(validator):
    sarif = sarif_dict(run_lint(load(demo_policy_path())), path="examples/lint_demo.fw")
    errors = sorted(validator.iter_errors(sarif), key=lambda e: list(e.path))
    assert not errors, "\n".join(
        f"{'/'.join(map(str, e.path))}: {e.message}" for e in errors
    )


def test_empty_report_sarif_is_schema_valid(validator, tmp_path):
    clean = tmp_path / "clean.fw"
    clean.write_text('firewall "clean" schema=standard\nany -> discard\n')
    sarif = sarif_dict(run_lint(load(clean)), path=str(clean))
    errors = list(validator.iter_errors(sarif))
    assert not errors
    assert sarif["runs"][0]["results"] == []


def test_schema_rejects_bad_level(validator, schema):
    bad = {
        "version": "2.1.0",
        "runs": [
            {
                "tool": {"driver": {"name": "repro-lint"}},
                "results": [{"message": {"text": "x"}, "level": "info"}],
            }
        ],
    }
    assert any(validator.iter_errors(bad)), (
        "subset schema must reject SARIF's non-existent 'info' level"
    )
