"""CLI tests for the ``repro lint`` subcommand: exit gating and flags."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.lint import all_checks, demo_policy_path

DEMO = str(demo_policy_path())


@pytest.fixture
def clean_policy(tmp_path):
    """A policy with no findings at any severity."""
    path = tmp_path / "clean.fw"
    path.write_text(
        'firewall "clean" schema=standard\n'
        "dst_ip=192.168.0.1, dst_port=smtp, protocol=tcp -> accept\n"
        "any -> discard\n"
    )
    return str(path)


@pytest.fixture
def warning_policy(tmp_path):
    """Warnings (an unreachable rule) but no errors."""
    path = tmp_path / "warn.fw"
    path.write_text(
        'firewall "warn" schema=standard\n'
        "src_ip=172.16.0.0/16 -> discard\n"
        "src_ip=172.16.5.0/24 -> discard\n"
        "any -> discard\n"
    )
    return str(path)


class TestFailOn:
    def test_error_gating_fails_demo(self, capsys):
        assert main(["lint", DEMO]) == 1
        assert "FW001" in capsys.readouterr().out

    def test_error_gating_passes_warnings(self, warning_policy, capsys):
        assert main(["lint", warning_policy, "--fail-on", "error"]) == 0
        assert "FW002" in capsys.readouterr().out

    def test_warning_gating_fails_warnings(self, warning_policy):
        assert main(["lint", warning_policy, "--fail-on", "warning"]) == 1

    def test_never_gating_always_passes(self, capsys):
        assert main(["lint", DEMO, "--fail-on", "never"]) == 0
        assert "FW001" in capsys.readouterr().out

    def test_clean_policy_passes_strictest(self, clean_policy, capsys):
        assert main(["lint", clean_policy, "--fail-on", "warning"]) == 0
        assert "clean" in capsys.readouterr().out


class TestSelection:
    def test_disable_error_check_passes(self, capsys):
        assert main(["lint", DEMO, "--disable", "FW001"]) == 0
        assert "FW001" not in capsys.readouterr().out

    def test_enable_single_check(self, capsys):
        assert main(["lint", DEMO, "--enable", "FW002", "--fail-on", "warning"]) == 1
        out = capsys.readouterr().out
        assert "FW002" in out and "FW001" not in out

    def test_unknown_code_is_usage_error(self, capsys):
        code = main(["lint", DEMO, "--enable", "FW999"])
        assert code == 2
        assert "FW999" in capsys.readouterr().err


class TestListChecks:
    def test_lists_every_registered_check(self, capsys):
        assert main(["lint", "--list-checks"]) == 0
        out = capsys.readouterr().out
        for info in all_checks():
            assert info.code in out
            assert info.name in out

    def test_policy_not_required(self, capsys):
        assert main(["lint", "--list-checks"]) == 0

    def test_missing_policy_without_list_is_error(self, capsys):
        assert main(["lint"]) == 2
        assert "policy" in capsys.readouterr().err


class TestFormats:
    def test_json_format(self, capsys):
        main(["lint", DEMO, "--format", "json", "--fail-on", "never"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"]["name"] == "repro-lint"
        assert payload["summary"]["error"] >= 1

    def test_sarif_format(self, capsys):
        main(["lint", DEMO, "--format", "sarif", "--fail-on", "never"])
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        assert sarif["runs"][0]["results"]

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["lint", "no/such/policy.fw"]) == 2
        assert "no/such/policy.fw" in capsys.readouterr().err


class TestGuardOptions:
    def test_exhausted_deadline_exits_3(self, capsys):
        assert main(["lint", DEMO, "--deadline", "0"]) == 3

    def test_generous_budget_ok(self):
        assert main(["lint", DEMO, "--deadline", "60", "--fail-on", "never"]) == 0


class TestAnomaliesExact:
    def test_exact_flag(self, capsys):
        assert main(["anomalies", DEMO, "--exact"]) in (0, 1)
        assert "shadowing" in capsys.readouterr().out
