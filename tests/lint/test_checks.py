"""Unit tests for the individual lint checkers.

The central acceptance case: a rule shadowed only by the *union* of
several earlier rules.  The pairwise containment test (Al-Shaer-style)
provably cannot see it, the FDD-exact checker must.
"""

from __future__ import annotations

import pytest

from repro.analysis import effective_rules, find_anomalies
from repro.exceptions import LintError
from repro.fields import toy_schema
from repro.guard import Budget, GuardContext
from repro.lint import Severity, all_checks, run_lint, selected_checks
from repro.policy import ACCEPT, ACCEPT_LOG, DISCARD, Firewall, Rule


def _fw(*specs):
    """Build a toy-schema firewall from ``(decision, lo, hi)`` triples."""
    schema = toy_schema(9)
    rules = []
    for decision, *bounds in specs:
        if bounds:
            rules.append(Rule.build(schema, decision, F1=tuple(bounds)))
        else:
            rules.append(Rule.build(schema, decision))
    return Firewall(schema, rules)


@pytest.fixture
def cumulative():
    """r3 is covered by r1 ∪ r2 (different decision), not by either alone."""
    return _fw(
        (ACCEPT, 0, 3),
        (ACCEPT, 4, 7),
        (DISCARD, 1, 6),
        (DISCARD,),
    )


class TestCumulativeShadowing:
    def test_pairwise_detector_misses_it(self, cumulative):
        kinds = [a.kind for a in find_anomalies(cumulative)]
        assert "shadowing" not in kinds

    def test_exact_checker_flags_it(self, cumulative):
        report = run_lint(cumulative)
        shadowed = report.by_code("FW001")
        assert [d.rule_index for d in shadowed] == [2]
        assert shadowed[0].severity is Severity.ERROR
        assert shadowed[0].related == (0, 1)

    def test_exact_anomaly_mode_agrees(self, cumulative):
        shadowing = [a for a in find_anomalies(cumulative, exact=True) if a.kind == "shadowing"]
        assert [(a.first, a.second) for a in shadowing] == [(0, 2)]

    def test_effective_analysis_detail(self, cumulative):
        analysis = effective_rules(cumulative)
        fact = analysis.rules[2]
        assert fact.shadowed and not fact.effective
        assert fact.conflicting == (0, 1)
        assert fact.witness is not None
        # The witness really is decided differently by an earlier rule.
        assert cumulative.evaluate(fact.witness) == ACCEPT


class TestDeadAndUnreachable:
    def test_same_decision_cover_is_unreachable_not_shadowed(self):
        fw = _fw((DISCARD, 0, 5), (DISCARD, 2, 4), (ACCEPT,))
        report = run_lint(fw)
        assert [d.rule_index for d in report.by_code("FW002")] == [1]
        assert not report.by_code("FW001")

    def test_live_rules_are_clean(self):
        fw = _fw((ACCEPT, 0, 3), (DISCARD,))
        report = run_lint(fw)
        assert not report.by_code("FW001")
        assert not report.by_code("FW002")

    def test_decision_never_taken(self):
        fw = _fw((ACCEPT, 0, 5), (ACCEPT_LOG, 2, 4), (DISCARD,))
        report = run_lint(fw)
        taken = report.by_code("FW004")
        assert [d.rule_index for d in taken] == [1]
        assert "accept+log" in taken[0].message


class TestRedundancy:
    def test_redundant_wrt_later_rule(self):
        # r1 accepts a sub-range of what the catch-all accepts anyway.
        fw = _fw((ACCEPT, 0, 3), (ACCEPT,))
        report = run_lint(fw)
        assert [d.rule_index for d in report.by_code("FW003")] == [0]

    def test_dead_rules_not_double_reported(self):
        fw = _fw((DISCARD, 0, 5), (DISCARD, 2, 4), (ACCEPT,))
        report = run_lint(fw)
        assert not report.by_code("FW003")


class TestSelection:
    def test_enable_restricts(self, cumulative):
        report = run_lint(cumulative, enable=["FW001"])
        assert report.checks_run == ("FW001",)
        assert report.diagnostics

    def test_disable_removes(self, cumulative):
        report = run_lint(cumulative, disable=["FW001"])
        assert "FW001" not in report.checks_run
        assert not report.by_code("FW001")

    def test_names_resolve_case_insensitively(self):
        infos = selected_checks(enable=["Shadowed-Rule"], disable=None)
        assert [i.code for i in infos] == ["FW001"]

    def test_unknown_code_raises(self):
        with pytest.raises(LintError):
            selected_checks(enable=["FW999"], disable=None)

    def test_registry_is_stable(self):
        codes = [info.code for info in all_checks()]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))


class TestGuardIntegration:
    def test_lint_respects_deadline_budget(self, cumulative):
        from repro.exceptions import BudgetExceededError

        guard = GuardContext(budget=Budget(deadline_s=0.0))
        with pytest.raises(BudgetExceededError):
            run_lint(cumulative, guard=guard)

    def test_lint_under_generous_budget(self, cumulative):
        guard = GuardContext(budget=Budget(deadline_s=60.0))
        report = run_lint(cumulative, guard=guard)
        assert report.by_code("FW001")


class TestReport:
    def test_counts_and_worst(self, cumulative):
        report = run_lint(cumulative)
        counts = report.counts()
        assert counts["error"] == len(report.by_code("FW001"))
        assert report.worst() is Severity.ERROR
        assert report.has_at_least(Severity.WARNING)

    def test_sorted_by_rule_then_code(self, cumulative):
        report = run_lint(cumulative)
        keys = [(d.rule_index if d.rule_index is not None else 10**9, d.code)
                for d in report.diagnostics]
        assert keys == sorted(keys)
