"""Tests for the policy lint engine (:mod:`repro.lint`)."""
