"""Golden-file tests for the three lint renderers.

The goldens are generated from ``examples/lint_demo.fw`` with the path
pinned to the repo-relative string, so output is byte-stable.  To
regenerate after an intentional renderer/demo change::

    PYTHONPATH=src python tests/lint/test_render.py --regenerate
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.lint import demo_policy_path, run_lint
from repro.lint.render import render_json, render_sarif, render_text, sarif_dict
from repro.policy import load

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
DEMO_PATH = "examples/lint_demo.fw"


def _render_all() -> dict[str, str]:
    report = run_lint(load(demo_policy_path()))
    rendered = {
        "demo.txt": render_text(report, path=DEMO_PATH),
        "demo.json": render_json(report, path=DEMO_PATH),
        "demo.sarif": render_sarif(report, path=DEMO_PATH),
    }
    return {k: v if v.endswith("\n") else v + "\n" for k, v in rendered.items()}


@pytest.fixture(scope="module")
def rendered() -> dict[str, str]:
    return _render_all()


@pytest.mark.parametrize("name", ["demo.txt", "demo.json", "demo.sarif"])
def test_matches_golden(rendered, name):
    golden = (GOLDEN_DIR / name).read_text()
    assert rendered[name] == golden, (
        f"{name} drifted from its golden file; regenerate with "
        f"`PYTHONPATH=src python tests/lint/test_render.py --regenerate` "
        f"if the change is intentional"
    )


def test_text_has_summary_line(rendered):
    last = rendered["demo.txt"].rstrip("\n").splitlines()[-1]
    assert "finding(s)" in last and "error(s)" in last


def test_json_roundtrips(rendered):
    payload = json.loads(rendered["demo.json"])
    assert payload["policy"]["path"] == DEMO_PATH
    assert sum(payload["summary"].values()) == len(payload["diagnostics"])
    codes = {d["code"] for d in payload["diagnostics"]}
    assert "FW001" in codes
    # 1-based rule labels and 0-based indices stay consistent.
    for diag in payload["diagnostics"]:
        if diag["rule_index"] is not None:
            assert diag["rule"] == diag["rule_index"] + 1


def test_sarif_structure(rendered):
    sarif = json.loads(rendered["demo.sarif"])
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert len(rule_ids) == len(set(rule_ids))
    for result in run["results"]:
        assert result["ruleId"] in rule_ids
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]
        assert result["level"] in {"error", "warning", "note"}
        (loc,) = result["locations"]
        region = loc["physicalLocation"]["region"]
        assert region["startLine"] >= 1


def test_sarif_level_mapping():
    sarif = sarif_dict(run_lint(load(demo_policy_path())), path=DEMO_PATH)
    levels = {r["ruleId"]: r["level"] for r in sarif["runs"][0]["results"]}
    assert levels["FW001"] == "error"
    assert levels["FW202"] == "warning"
    assert levels["FW101"] == "note"  # SARIF has no "info" level


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, text in _render_all().items():
        (GOLDEN_DIR / name).write_text(text)
        print(f"wrote {GOLDEN_DIR / name}")


if __name__ == "__main__" and "--regenerate" in sys.argv:
    _regenerate()
