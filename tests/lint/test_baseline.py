"""Baseline-diff lint mode: fingerprints, multiset diffing, CLI gating."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.cli import main
from repro.exceptions import LintError
from repro.lint import (
    baseline_fingerprints,
    diagnostic_fingerprint,
    load_baseline,
    new_findings,
    run_lint,
    sarif_dict,
)
from repro.policy import loads

SHADOWED = """\
firewall "shadowed" schema=standard
src_ip=10.0.0.0/8 -> accept
src_ip=10.1.0.0/16 -> discard
any -> discard
"""

SHADOWED_TWICE = """\
firewall "shadowed" schema=standard
src_ip=10.0.0.0/8 -> accept
src_ip=10.1.0.0/16 -> discard
src_ip=10.2.0.0/16 -> discard
any -> discard
"""


def sarif_for(text: str) -> dict:
    firewall = loads(text)
    return sarif_dict(run_lint(firewall), path="policy.fw")


class TestFingerprints:
    def test_matches_sarif_partial_fingerprint(self):
        report = run_lint(loads(SHADOWED))
        assert report.diagnostics, "fixture must produce findings"
        sarif = sarif_dict(report, path="policy.fw")
        emitted = [
            result["partialFingerprints"]["reproLint/v1"]
            for result in sarif["runs"][0]["results"]
        ]
        assert emitted == [
            diagnostic_fingerprint(d) for d in report.diagnostics
        ]

    def test_stable_under_unrelated_line_shift(self):
        # The same finding anchored on the same rule index fingerprints
        # identically even when source lines move.
        first = run_lint(loads(SHADOWED)).diagnostics[0]
        assert diagnostic_fingerprint(first) == f"{first.code}/{first.rule_index}"


class TestBaselineExtraction:
    def test_multiset_semantics(self):
        counts = baseline_fingerprints(sarif_for(SHADOWED_TWICE))
        assert sum(counts.values()) == len(
            run_lint(loads(SHADOWED_TWICE)).diagnostics
        )

    def test_foreign_results_fall_back_to_rule_id(self):
        foreign = {
            "runs": [
                {"results": [{"ruleId": "XX001", "message": {"text": "hi"}}]}
            ]
        }
        assert baseline_fingerprints(foreign) == Counter({"XX001/None": 1})

    def test_load_baseline_rejects_bad_json(self, tmp_path):
        path = tmp_path / "base.sarif"
        path.write_text("{ nope")
        with pytest.raises(LintError, match="not valid JSON"):
            load_baseline(str(path))

    def test_load_baseline_rejects_non_sarif(self, tmp_path):
        path = tmp_path / "base.sarif"
        path.write_text('{"policies": []}')
        with pytest.raises(LintError, match="not a SARIF log"):
            load_baseline(str(path))


class TestNewFindings:
    def test_identical_run_yields_no_new_findings(self):
        report = run_lint(loads(SHADOWED))
        baseline = baseline_fingerprints(sarif_for(SHADOWED))
        assert new_findings(report, baseline).diagnostics == ()

    def test_new_finding_survives_diff(self):
        report = run_lint(loads(SHADOWED_TWICE))
        baseline = baseline_fingerprints(sarif_for(SHADOWED))
        fresh = new_findings(report, baseline)
        assert 0 < len(fresh.diagnostics) < len(report.diagnostics)

    def test_each_baseline_occurrence_absorbs_one(self):
        report = run_lint(loads(SHADOWED))
        fingerprint = diagnostic_fingerprint(report.diagnostics[0])
        fresh = new_findings(report, Counter({fingerprint: 1}))
        assert len(fresh.diagnostics) == len(report.diagnostics) - 1

    def test_checks_run_preserved(self):
        report = run_lint(loads(SHADOWED))
        fresh = new_findings(report, Counter())
        assert fresh.checks_run == report.checks_run


class TestCli:
    def write_policy(self, tmp_path, text):
        path = tmp_path / "policy.fw"
        path.write_text(text)
        return str(path)

    def test_exit_reflects_new_findings_only(self, tmp_path, capsys):
        policy = self.write_policy(tmp_path, SHADOWED)
        assert main(["lint", policy, "--fail-on", "warning"]) == 1
        capsys.readouterr()

        assert main(["lint", policy, "--format", "sarif", "--fail-on", "never"]) == 0
        baseline = tmp_path / "base.sarif"
        baseline.write_text(capsys.readouterr().out)

        # Same policy against its own baseline: nothing new, exit 0.
        code = main(
            ["lint", policy, "--fail-on", "warning", "--baseline", str(baseline)]
        )
        assert code == 0
        assert "known finding(s) suppressed" in capsys.readouterr().out

        # A regression produces a new finding and fails again.
        policy2 = self.write_policy(tmp_path, SHADOWED_TWICE)
        code = main(
            ["lint", policy2, "--fail-on", "warning", "--baseline", str(baseline)]
        )
        assert code == 1

    def test_bad_baseline_is_a_usage_error(self, tmp_path, capsys):
        policy = self.write_policy(tmp_path, SHADOWED)
        bad = tmp_path / "bad.sarif"
        bad.write_text("not json")
        assert main(["lint", policy, "--baseline", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err
