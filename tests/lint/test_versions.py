"""Check versioning and single-construction guarantees of the engine."""

from __future__ import annotations

import json

import pytest

from repro.fdd.store import NodeStore
from repro.lint import (
    LintContext,
    all_checks,
    render_json,
    run_lint,
    sarif_dict,
)
from repro.policy import loads

POLICY = """\
firewall "p" schema=standard
src_ip=10.0.0.0/8 -> accept
src_ip=10.1.0.0/16 -> discard
any -> discard
"""


class TestDeclaredVersions:
    def test_every_check_declares_a_version(self):
        for info in all_checks():
            assert info.version >= 1, info.code

    def test_versions_surface_in_sarif_rule_properties(self):
        sarif = sarif_dict(run_lint(loads(POLICY)), path="p.fw")
        rules = sarif["runs"][0]["tool"]["driver"]["rules"]
        by_code = {rule["id"]: rule for rule in rules}
        for info in all_checks():
            assert by_code[info.code]["properties"]["version"] == info.version

    def test_versions_surface_in_json_report(self):
        document = json.loads(render_json(run_lint(loads(POLICY)), path="p.fw"))
        versions = document["check_versions"]
        assert versions == {info.code: info.version for info in all_checks()}


class TestSingleConstruction:
    @pytest.fixture
    def construct_counter(self, monkeypatch):
        """Record the identity of every firewall handed to ``construct``.

        Candidate diagrams of the redundancy sweep are *derived*
        firewalls (same name, different object), so identity separates
        "rebuilt the policy" from legitimate per-candidate work.
        """
        calls = []
        original = NodeStore.construct

        def counting(self, firewall, *args, **kwargs):
            calls.append(firewall)
            return original(self, firewall, *args, **kwargs)

        monkeypatch.setattr(NodeStore, "construct", counting)
        return calls

    def test_full_lint_run_constructs_policy_once(self, construct_counter):
        firewall = loads(POLICY)
        run_lint(firewall)
        rebuilds = [f for f in construct_counter if f is firewall]
        assert len(rebuilds) <= 1

    def test_seeded_context_constructs_nothing_for_policy(
        self, construct_counter
    ):
        firewall = loads(POLICY)
        store = NodeStore()
        fdd = store.construct(firewall)
        construct_counter.clear()
        context = LintContext(firewall, store=store, fdd=fdd)
        run_lint(firewall, context=context)
        assert all(f is not firewall for f in construct_counter)
