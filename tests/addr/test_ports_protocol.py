"""Unit tests for port and protocol vocabulary."""

import pytest

from repro.addr import (
    PORT_MAX,
    PROTOCOL_MAX,
    format_port_set,
    format_protocol_set,
    parse_port,
    parse_port_range,
    parse_protocol,
)
from repro.exceptions import AddressError
from repro.intervals import Interval, IntervalSet


class TestPorts:
    def test_numeric(self):
        assert parse_port("25") == 25

    def test_service_names(self):
        assert parse_port("smtp") == 25
        assert parse_port("HTTPS") == 443

    def test_unknown_service(self):
        with pytest.raises(AddressError):
            parse_port("gopherx")

    def test_too_large(self):
        with pytest.raises(AddressError):
            parse_port("65536")

    def test_range_forms(self):
        assert parse_port_range("1024-65535") == Interval(1024, PORT_MAX)
        assert parse_port_range("20:21") == Interval(20, 21)
        assert parse_port_range("any") == Interval(0, PORT_MAX)
        assert parse_port_range("smtp") == Interval(25, 25)

    def test_inverted_range(self):
        with pytest.raises(AddressError):
            parse_port_range("90-80")

    def test_format_whole_domain(self):
        assert format_port_set(IntervalSet.span(0, PORT_MAX)) == "all"

    def test_format_named_single(self):
        assert format_port_set(IntervalSet.single(25)) == "25 (smtp)"
        assert format_port_set(IntervalSet.single(25), names=False) == "25"

    def test_format_range_and_unknown(self):
        s = IntervalSet.of((1024, 2048), 4444)
        assert format_port_set(s) == "1024-2048, 4444"

    def test_format_empty(self):
        assert format_port_set(IntervalSet.empty()) == "none"


class TestProtocols:
    def test_names_and_numbers(self):
        assert parse_protocol("tcp") == Interval(6, 6)
        assert parse_protocol("UDP") == Interval(17, 17)
        assert parse_protocol("47") == Interval(47, 47)
        assert parse_protocol("any") == Interval(0, PROTOCOL_MAX)

    def test_unknown(self):
        with pytest.raises(AddressError):
            parse_protocol("quic")

    def test_too_large(self):
        with pytest.raises(AddressError):
            parse_protocol("256")

    def test_format(self):
        assert format_protocol_set(IntervalSet.single(6)) == "tcp"
        assert format_protocol_set(IntervalSet.single(99)) == "99"
        assert format_protocol_set(IntervalSet.span(0, PROTOCOL_MAX)) == "all"
        assert format_protocol_set(IntervalSet.of((6, 6), (17, 17))) == "tcp, udp"
