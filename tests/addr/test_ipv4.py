"""Unit tests for IPv4 parsing and formatting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addr import IPV4_MAX, int_to_ip, ip_to_int, is_valid_ip
from repro.exceptions import AddressError


class TestParsing:
    def test_basic(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == IPV4_MAX
        assert ip_to_int("192.168.0.1") == 0xC0A80001

    def test_whitespace_tolerated(self):
        assert ip_to_int(" 10.0.0.1 ") == 0x0A000001

    @pytest.mark.parametrize(
        "bad",
        ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1.2.3.-4", "01.2.3.4"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            ip_to_int(bad)
        assert not is_valid_ip(bad)


class TestFormatting:
    def test_basic(self):
        assert int_to_ip(0) == "0.0.0.0"
        assert int_to_ip(IPV4_MAX) == "255.255.255.255"
        assert int_to_ip(0xC0A80001) == "192.168.0.1"

    def test_out_of_range(self):
        with pytest.raises(AddressError):
            int_to_ip(IPV4_MAX + 1)
        with pytest.raises(AddressError):
            int_to_ip(-1)

    @given(st.integers(min_value=0, max_value=IPV4_MAX))
    def test_round_trip(self, value):
        assert ip_to_int(int_to_ip(value)) == value
