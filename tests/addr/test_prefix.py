"""Unit and property tests for prefix <-> interval conversion (Sec. 7.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addr import (
    IPV4_MAX,
    Prefix,
    format_ip_set,
    interval_to_prefixes,
    intervalset_to_prefixes,
    parse_prefix,
    prefix_to_interval,
)
from repro.exceptions import AddressError
from repro.intervals import Interval, IntervalSet


class TestPrefix:
    def test_parse_cidr(self):
        p = parse_prefix("224.168.0.0/16")
        assert p.length == 16
        assert p.lo == 0xE0A80000
        assert p.hi == 0xE0A8FFFF

    def test_bare_address_is_host(self):
        p = parse_prefix("10.0.0.1")
        assert p.length == 32 and p.lo == p.hi

    def test_rejects_host_bits(self):
        with pytest.raises(AddressError):
            parse_prefix("10.0.0.1/24")

    def test_rejects_bad_length(self):
        with pytest.raises(AddressError):
            parse_prefix("10.0.0.0/33")
        with pytest.raises(AddressError):
            parse_prefix("10.0.0.0/x")

    def test_prefix_validation(self):
        with pytest.raises(AddressError):
            Prefix(network=1, length=24)  # host bits set

    def test_str(self):
        assert str(parse_prefix("192.168.0.0/16")) == "192.168.0.0/16"

    def test_prefix_to_interval_unique(self):
        assert prefix_to_interval("0.0.0.0/0") == Interval(0, IPV4_MAX)


class TestIntervalToPrefixes:
    def test_paper_example_2_8(self):
        # "the interval [2, 8] can be converted to three prefixes" (Sec 7.1)
        prefixes = interval_to_prefixes(Interval(2, 8), bits=4)
        assert len(prefixes) == 3
        covered = set()
        for p in prefixes:
            covered.update(range(p.lo, p.hi + 1))
        assert covered == set(range(2, 9))

    def test_aligned_block_is_one_prefix(self):
        assert len(interval_to_prefixes(Interval(0, 255))) == 1

    def test_single_host(self):
        prefixes = interval_to_prefixes(Interval(7, 7))
        assert len(prefixes) == 1 and prefixes[0].length == 32

    @given(
        st.tuples(
            st.integers(min_value=0, max_value=1023),
            st.integers(min_value=0, max_value=1023),
        )
    )
    def test_cover_is_exact_and_bounded(self, pair):
        lo, hi = min(pair), max(pair)
        w = 10
        prefixes = interval_to_prefixes(Interval(lo, hi), bits=w)
        # Exact cover, disjoint.
        covered: list[int] = []
        for p in prefixes:
            covered.extend(range(p.lo, p.hi + 1))
        assert sorted(covered) == list(range(lo, hi + 1))
        assert len(covered) == len(set(covered))
        # The 2w - 2 bound of [14].
        assert len(prefixes) <= 2 * w - 2

    def test_interval_too_large_for_bits(self):
        with pytest.raises(AddressError):
            interval_to_prefixes(Interval(0, 16), bits=4)


class TestFormatIpSet:
    def test_all(self):
        assert format_ip_set(IntervalSet.span(0, IPV4_MAX)) == "all"

    def test_single_host(self):
        s = IntervalSet.single(0xC0A80001)
        assert format_ip_set(s) == "192.168.0.1"

    def test_prefix(self):
        s = IntervalSet.span(0xE0A80000, 0xE0A8FFFF)
        assert format_ip_set(s) == "224.168.0.0/16"

    def test_complement_rendering(self):
        hole = IntervalSet.span(0xE0A80000, 0xE0A8FFFF)
        s = IntervalSet.span(0, IPV4_MAX) - hole
        assert format_ip_set(s) == "all except 224.168.0.0/16"

    def test_empty(self):
        assert format_ip_set(IntervalSet.empty()) == "none"

    def test_intervalset_to_prefixes_concatenates(self):
        s = IntervalSet.of((0, 255), (512, 767))
        assert len(intervalset_to_prefixes(s)) == 2
