"""Unit and property tests for the ROBDD engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, TRUE, BDDManager
from repro.exceptions import BDDError


class TestBasics:
    def test_terminals(self):
        m = BDDManager(3)
        assert m.ite(TRUE, TRUE, FALSE) == TRUE
        assert m.not_(TRUE) == FALSE

    def test_var_bounds(self):
        m = BDDManager(2)
        with pytest.raises(BDDError):
            m.var(2)
        with pytest.raises(BDDError):
            BDDManager(0)

    def test_hash_consing(self):
        m = BDDManager(3)
        a = m.and_(m.var(0), m.var(1))
        b = m.and_(m.var(0), m.var(1))
        assert a == b  # same node id

    def test_reduction(self):
        m = BDDManager(2)
        # x ? y : y  ==  y
        assert m.ite(m.var(0), m.var(1), m.var(1)) == m.var(1)

    def test_negated_var(self):
        m = BDDManager(2)
        assert m.nvar(0) == m.not_(m.var(0))


def _eval(m: BDDManager, node: int, assignment: dict[int, bool]) -> bool:
    while node not in (FALSE, TRUE):
        var = m._var[node]
        node = m._high[node] if assignment[var] else m._low[node]
    return node == TRUE


def _assignments(n):
    for bits in range(1 << n):
        yield {i: bool((bits >> i) & 1) for i in range(n)}


class TestAlgebra:
    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    @settings(max_examples=40, deadline=None)
    def test_boolean_ops_truth_tables(self, fa_bits, fb_bits):
        """Treat two random 3-var truth tables as functions; verify ops."""
        m = BDDManager(3)

        def from_table(bits):
            node = FALSE
            for index, assignment in enumerate(_assignments(3)):
                if (bits >> index) & 1:
                    cube = TRUE
                    for var in range(3):
                        literal = m.var(var) if assignment[var] else m.nvar(var)
                        cube = m.and_(cube, literal)
                    node = m.or_(node, cube)
            return node

        fa = from_table(fa_bits)
        fb = from_table(fb_bits)
        for index, assignment in enumerate(_assignments(3)):
            va = bool((fa_bits >> index) & 1)
            vb = bool((fb_bits >> index) & 1)
            assert _eval(m, m.and_(fa, fb), assignment) == (va and vb)
            assert _eval(m, m.or_(fa, fb), assignment) == (va or vb)
            assert _eval(m, m.xor(fa, fb), assignment) == (va != vb)
            assert _eval(m, m.diff(fa, fb), assignment) == (va and not vb)
            assert _eval(m, m.not_(fa), assignment) == (not va)


class TestCounting:
    def test_count_terminals(self):
        m = BDDManager(4)
        assert m.count_solutions(FALSE) == 0
        assert m.count_solutions(TRUE) == 16

    def test_count_single_var(self):
        m = BDDManager(4)
        assert m.count_solutions(m.var(0)) == 8
        assert m.count_solutions(m.var(3)) == 8

    def test_count_with_gaps(self):
        m = BDDManager(4)
        f = m.and_(m.var(0), m.var(3))  # vars 1, 2 free
        assert m.count_solutions(f) == 4

    def test_count_xor(self):
        m = BDDManager(2)
        assert m.count_solutions(m.xor(m.var(0), m.var(1))) == 2

    def test_node_count(self):
        m = BDDManager(3)
        f = m.and_(m.var(0), m.and_(m.var(1), m.var(2)))
        assert m.node_count(f) == 3
        assert m.node_count(TRUE) == 0


class TestCubes:
    def test_cube_enumeration(self):
        m = BDDManager(3)
        f = m.or_(m.var(0), m.var(1))
        cubes = list(m.cubes(f))
        # Every cube satisfies f, and together they cover exactly f.
        for cube in cubes:
            assignment = {i: cube.get(i, False) for i in range(3)}
            assert _eval(m, f, assignment)

    def test_cube_limit(self):
        m = BDDManager(4)
        f = m.xor(m.var(0), m.xor(m.var(1), m.var(2)))
        assert m.count_cubes(f, limit=2) == 2
        assert m.count_cubes(f) >= 4

    def test_cubes_of_false(self):
        m = BDDManager(2)
        assert list(m.cubes(FALSE)) == []
