"""Tests for the firewall -> BDD encoding and the Section 7.5 baseline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FirewallEncoder, compare_with_bdd, cube_to_text
from repro.fdd.fast import compare_fast
from repro.fields import enumerate_universe, toy_schema
from repro.intervals import IntervalSet
from repro.policy import Rule
from repro.synth import team_a_firewall, team_b_firewall

from tests.conftest import firewalls

SCHEMA = toy_schema(7, 7)  # power-of-two domains: bits align exactly
SCHEMA_ODD = toy_schema(9, 5)  # non-power-of-two: domain constraint matters


def r(schema, decision, **conjuncts):
    return Rule.build(schema, decision, **conjuncts)


class TestComparators:
    @given(
        st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)
    )
    @settings(max_examples=30, deadline=None)
    def test_geq_leq(self, lo, hi):
        encoder = FirewallEncoder(SCHEMA)
        geq = encoder.encode_geq(0, lo)
        leq = encoder.encode_leq(0, hi)
        both = encoder.manager.and_(geq, leq)
        for value in range(8):
            assignment = {
                bit: bool((value >> (encoder.widths[0] - 1 - bit)) & 1)
                for bit in range(encoder.widths[0])
            }
            # Evaluate by walking the diagram.
            from tests.bdd.test_bdd import _eval

            full = {i: assignment.get(i, False) for i in range(encoder.manager.num_vars)}
            assert _eval(encoder.manager, geq, full) == (value >= lo)
            assert _eval(encoder.manager, leq, full) == (value <= hi)
            assert _eval(encoder.manager, both, full) == (lo <= value <= hi)

    def test_interval_set_encoding_counts(self):
        encoder = FirewallEncoder(SCHEMA)
        values = IntervalSet.of((1, 2), 5)
        node = encoder.encode_interval_set(0, values)
        # Fix field 0, field 1 free: 3 * 8 solutions.
        assert encoder.manager.count_solutions(node) == 3 * 8


class TestAcceptSet:
    @given(firewalls(SCHEMA, max_rules=4))
    @settings(max_examples=25, deadline=None)
    def test_accept_set_matches_evaluation(self, firewall):
        encoder = FirewallEncoder(SCHEMA)
        accept = encoder.encode_accept_set(firewall)
        expected = sum(
            1 for p in enumerate_universe(SCHEMA) if firewall(p).permits
        )
        assert encoder.manager.count_solutions(accept) == expected

    @given(firewalls(SCHEMA_ODD, max_rules=3))
    @settings(max_examples=20, deadline=None)
    def test_domain_constraint_on_odd_domains(self, firewall):
        encoder = FirewallEncoder(SCHEMA_ODD)
        accept = encoder.manager.and_(
            encoder.encode_accept_set(firewall), encoder.domain_constraint()
        )
        expected = sum(
            1 for p in enumerate_universe(SCHEMA_ODD) if firewall(p).permits
        )
        assert encoder.manager.count_solutions(accept) == expected


class TestCompareWithBdd:
    @given(firewalls(SCHEMA_ODD, max_rules=3), firewalls(SCHEMA_ODD, max_rules=3))
    @settings(max_examples=20, deadline=None)
    def test_agrees_with_fdd_engine(self, fw_a, fw_b):
        baseline = compare_with_bdd(fw_a, fw_b)
        # The BDD baseline only sees permit/deny, so compare against the
        # permit-level diff, not the full decision diff.
        expected = sum(
            1
            for p in enumerate_universe(SCHEMA_ODD)
            if fw_a(p).permits != fw_b(p).permits
        )
        assert baseline.disputed_packets == expected
        assert baseline.equivalent() == (expected == 0)

    def test_paper_example_agrees_with_fdd(self):
        fw_a, fw_b = team_a_firewall(), team_b_firewall()
        baseline = compare_with_bdd(fw_a, fw_b)
        fast = compare_fast(fw_a, fw_b)
        assert baseline.disputed_packets == fast.disputed_packet_count()

    def test_cube_explosion_on_paper_example(self):
        """The Section 7.5 point: far more cubes than FDD regions."""
        baseline = compare_with_bdd(team_a_firewall(), team_b_firewall())
        from repro import aggregate_discrepancies, compare_firewalls

        regions = aggregate_discrepancies(
            compare_firewalls(team_a_firewall(), team_b_firewall())
        )
        assert baseline.cube_count > 10 * len(regions)

    def test_cube_rendering_is_bit_level(self):
        baseline = compare_with_bdd(team_a_firewall(), team_b_firewall())
        cube = next(iter(baseline.manager.cubes(baseline.difference, limit=1)))
        text = cube_to_text(cube, baseline.encoder)
        assert "=" in text
        mask = text.split("=", 1)[1]
        assert set(mask) <= set("01*, abcdefghijklmnopqrstuvwxyz_=")
