"""Unit tests for field schemas."""

import pytest

from repro.exceptions import AddressError, SchemaError
from repro.fields import (
    Field,
    FieldKind,
    FieldSchema,
    interface_schema,
    standard_schema,
    toy_schema,
)
from repro.intervals import IntervalSet


class TestField:
    def test_domain(self):
        f = Field("x", FieldKind.GENERIC, 9)
        assert f.domain_size() == 10
        assert f.domain_set == IntervalSet.span(0, 9)

    def test_default_symbol(self):
        assert Field("proto", FieldKind.GENERIC, 9).symbol == "P"

    def test_negative_domain_rejected(self):
        with pytest.raises(SchemaError):
            Field("x", FieldKind.GENERIC, -1)

    def test_parse_any(self):
        f = Field("x", FieldKind.GENERIC, 9)
        assert f.parse_value_set("any") == f.domain_set
        assert f.parse_value_set("*") == f.domain_set

    def test_parse_integers_and_ranges(self):
        f = Field("x", FieldKind.GENERIC, 99)
        assert f.parse_value_set("5") == IntervalSet.single(5)
        assert f.parse_value_set("5, 10-12") == IntervalSet.of(5, (10, 12))

    def test_parse_negation(self):
        f = Field("x", FieldKind.GENERIC, 9)
        assert f.parse_value_set("not 3-5") == IntervalSet.of((0, 2), (6, 9))
        assert f.parse_value_set("all except 0") == IntervalSet.span(1, 9)

    def test_parse_out_of_domain(self):
        f = Field("x", FieldKind.GENERIC, 9)
        with pytest.raises(SchemaError):
            f.parse_value_set("10")

    def test_parse_garbage(self):
        f = Field("x", FieldKind.GENERIC, 9)
        with pytest.raises(AddressError):
            f.parse_value_set("banana")

    def test_ip_field_vocabulary(self):
        f = standard_schema().field_named("src_ip")
        values = f.parse_value_set("10.0.0.0/8")
        assert values.count() == 1 << 24
        assert f.format_value_set(values) == "10.0.0.0/8"

    def test_ip_field_dash_range(self):
        f = standard_schema().field_named("src_ip")
        values = f.parse_value_set("10.0.0.1-10.0.0.3")
        assert values.count() == 3

    def test_port_field_vocabulary(self):
        f = standard_schema().field_named("dst_port")
        assert f.parse_value_set("smtp") == IntervalSet.single(25)

    def test_protocol_field_vocabulary(self):
        f = standard_schema().field_named("protocol")
        assert f.parse_value_set("tcp") == IntervalSet.single(6)


class TestFieldSchema:
    def test_standard_schema_shape(self):
        schema = standard_schema()
        assert len(schema) == 5
        assert [f.name for f in schema] == [
            "src_ip", "dst_ip", "src_port", "dst_port", "protocol",
        ]

    def test_interface_schema_shape(self):
        schema = interface_schema()
        assert [f.symbol for f in schema] == ["I", "S", "D", "N", "P"]
        assert schema[0].max_value == 1
        assert schema[4].max_value == 1

    def test_universe_size(self):
        assert toy_schema(9, 9).universe_size() == 100

    def test_index_of(self):
        schema = standard_schema()
        assert schema.index_of("dst_port") == 3
        with pytest.raises(SchemaError):
            schema.index_of("nope")

    def test_duplicate_names_rejected(self):
        f = Field("x", FieldKind.GENERIC, 9)
        with pytest.raises(SchemaError):
            FieldSchema((f, f))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            FieldSchema(())

    def test_reordered(self):
        schema = toy_schema(9, 19)
        reordered = schema.reordered(["F2", "F1"])
        assert reordered[0].max_value == 19
        with pytest.raises(SchemaError):
            schema.reordered(["F1"])

    def test_equality_and_hash(self):
        assert toy_schema(9, 9) == toy_schema(9, 9)
        assert toy_schema(9, 9) != toy_schema(9, 8)
        assert hash(toy_schema(9, 9)) == hash(toy_schema(9, 9))
