"""Unit tests for packets and packet sampling."""

import pytest

from repro.exceptions import SchemaError
from repro.fields import Packet, PacketSampler, enumerate_universe, standard_schema, toy_schema
from repro.intervals import IntervalSet


class TestPacket:
    def test_is_a_tuple(self):
        p = Packet((1, 2))
        assert p == (1, 2)
        assert p[0] == 1

    def test_schema_validation(self):
        schema = toy_schema(9, 9)
        Packet((0, 9), schema)  # fine
        with pytest.raises(SchemaError):
            Packet((0, 10), schema)
        with pytest.raises(SchemaError):
            Packet((0,), schema)

    def test_describe(self):
        schema = standard_schema()
        p = Packet((0xC0A80001, 0, 25, 25, 6))
        text = p.describe(schema)
        assert "src_ip=192.168.0.1" in text
        assert "protocol=tcp" in text


class TestPacketSampler:
    def test_uniform_within_domains(self):
        schema = toy_schema(3, 7)
        sampler = PacketSampler(schema, seed=1)
        for packet in sampler.uniform_many(100):
            assert 0 <= packet[0] <= 3 and 0 <= packet[1] <= 7

    def test_deterministic_with_seed(self):
        schema = toy_schema(9, 9)
        a = PacketSampler(schema, seed=5).uniform_many(10)
        b = PacketSampler(schema, seed=5).uniform_many(10)
        assert a == b

    def test_from_region(self):
        schema = toy_schema(9, 9)
        sampler = PacketSampler(schema, seed=2)
        region = (IntervalSet.of((2, 3)), IntervalSet.single(7))
        for _ in range(20):
            packet = sampler.from_region(region)
            assert packet[0] in (2, 3) and packet[1] == 7

    def test_from_region_wrong_arity(self):
        schema = toy_schema(9, 9)
        sampler = PacketSampler(schema, seed=2)
        with pytest.raises(SchemaError):
            sampler.from_region((IntervalSet.single(1),))

    def test_near_boundaries(self):
        schema = toy_schema(9, 9)
        sampler = PacketSampler(schema, seed=3)
        packet = sampler.near_boundaries([[0, 9], [5]])
        assert packet[0] in (0, 9) and packet[1] == 5

    def test_near_boundaries_filters_out_of_domain(self):
        schema = toy_schema(9, 9)
        sampler = PacketSampler(schema, seed=3)
        packet = sampler.near_boundaries([[-5, 100], [5]])
        assert 0 <= packet[0] <= 9  # fell back to uniform


class TestEnumerateUniverse:
    def test_enumerates_all(self):
        schema = toy_schema(1, 2)
        packets = list(enumerate_universe(schema))
        assert len(packets) == 6
        assert len(set(packets)) == 6

    def test_refuses_huge_universe(self):
        with pytest.raises(SchemaError):
            list(enumerate_universe(standard_schema()))
