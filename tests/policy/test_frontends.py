"""Tests for the dialect registry (:mod:`repro.policy.frontends`).

Covers the frontends' extended matches (negation, multiport,
conntrack), source-line provenance (satellite: every import error names
its dialect and original line; every parsed rule knows where it came
from), the nftables frontend, and golden real-world-shaped dumps.
"""

from pathlib import Path

import pytest

from repro.addr import ip_to_int
from repro.exceptions import ParseError, ReproError
from repro.fdd.canonical import semantic_fingerprint
from repro.fields import standard_schema
from repro.policy import ACCEPT, ACCEPT_LOG, DISCARD, DISCARD_LOG
from repro.policy.frontends import dialect_names, emit_policy, parse_policy
from repro.stateful import STATE_ESTABLISHED, STATE_NEW, stateful_schema

DATA = Path(__file__).resolve().parent.parent / "data" / "frontends"

GOLDEN = {
    "iptables": DATA / "golden.iptables",
    "nftables": DATA / "golden.nft",
    "cisco": DATA / "golden.cisco",
    "native": DATA / "golden.native",
}


class TestRegistry:
    def test_all_dialects_registered(self):
        assert dialect_names() == ("cisco", "iptables", "native", "nftables")

    def test_unknown_dialect_rejected(self):
        with pytest.raises(ReproError, match="pf"):
            parse_policy(":FORWARD ACCEPT [0:0]\n", "pf")

    def test_every_dialect_has_a_golden_file(self):
        assert set(GOLDEN) == set(dialect_names())
        for path in GOLDEN.values():
            assert path.is_file(), path


class TestExtendedIptables:
    TEXT = """\
*filter
:FORWARD DROP [0:0]
-A FORWARD -m conntrack --ctstate ESTABLISHED -j ACCEPT
-A FORWARD ! -s 10.0.0.0/8 -p tcp -m multiport --dports 22,80,443 -j ACCEPT
-A FORWARD -s 192.168.1.0/24 -p udp --dport 53 -j ACCEPT
COMMIT
"""

    def test_ctstate_upgrades_to_stateful_schema(self):
        fw = parse_policy(self.TEXT, "iptables").to_firewall()
        assert fw.schema == stateful_schema()
        established = (STATE_ESTABLISHED, 1, 2, 3, 4, 6)
        fresh = (STATE_NEW, 1, 2, 3, 4, 6)
        assert fw(established) == ACCEPT
        assert fw(fresh) == DISCARD

    def test_negation_and_multiport(self):
        fw = parse_policy(self.TEXT, "iptables").to_firewall()
        outside = ip_to_int("203.0.113.9")
        inside = ip_to_int("10.1.2.3")
        for port in (22, 80, 443):
            assert fw((STATE_NEW, outside, 1, 1, port, 6)) == ACCEPT
            assert fw((STATE_NEW, inside, 1, 1, port, 6)) == DISCARD
        assert fw((STATE_NEW, outside, 1, 1, 444, 6)) == DISCARD

    def test_source_line_provenance(self):
        fw = parse_policy(self.TEXT, "iptables").to_firewall()
        # Three -A rules on lines 3-5, then the chain-policy catch-all
        # anchored at its declaration (line 2).
        assert [rule.source_line for rule in fw.rules] == [3, 4, 5, 2]

    def test_ports_disjunction_rejected_with_dialect_and_line(self):
        text = (
            ":FORWARD ACCEPT [0:0]\n"
            "-A FORWARD -p tcp -m multiport --ports 80,443 -j ACCEPT\n"
        )
        with pytest.raises(ParseError) as exc_info:
            parse_policy(text, "iptables")
        assert "iptables" in str(exc_info.value)
        assert exc_info.value.line == 2

    def test_log_then_drop_folds_to_discard_log(self):
        text = (
            ":FORWARD ACCEPT [0:0]\n"
            '-A FORWARD -s 172.16.0.0/12 -j LOG --log-prefix "x: "\n'
            "-A FORWARD -s 172.16.0.0/12 -j DROP\n"
        )
        fw = parse_policy(text, "iptables").to_firewall()
        assert fw((ip_to_int("172.16.5.5"), 1, 1, 1, 6)) == DISCARD_LOG

    def test_negated_ctstate(self):
        text = (
            ":FORWARD DROP [0:0]\n"
            "-A FORWARD -m conntrack ! --ctstate NEW -j ACCEPT\n"
        )
        fw = parse_policy(text, "iptables").to_firewall()
        assert fw((STATE_ESTABLISHED, 1, 2, 3, 4, 6)) == ACCEPT
        assert fw((STATE_NEW, 1, 2, 3, 4, 6)) == DISCARD


class TestNftablesFrontend:
    TEXT = """\
table inet filter {
	chain forward {
		type filter hook forward priority 0; policy drop;
		ct state established accept
		ip saddr != 10.0.0.0/8 tcp dport { 22, 443 } accept comment "public"
		ip saddr 192.168.1.1 udp dport 53 accept
	}
}
"""

    def test_parses_with_provenance(self):
        fw = parse_policy(self.TEXT, "nftables").to_firewall()
        assert fw.schema == stateful_schema()
        # Rules on lines 4-6; chain policy catch-all anchored at line 3.
        assert [rule.source_line for rule in fw.rules] == [4, 5, 6, 3]
        assert fw.rules[1].comment == "public"

    def test_semantics(self):
        fw = parse_policy(self.TEXT, "nftables").to_firewall()
        outside = ip_to_int("203.0.113.9")
        inside = ip_to_int("10.1.2.3")
        assert fw((STATE_NEW, outside, 1, 1, 443, 6)) == ACCEPT
        assert fw((STATE_NEW, inside, 1, 1, 443, 6)) == DISCARD
        assert fw((STATE_ESTABLISHED, inside, 1, 1, 9999, 17)) == ACCEPT
        assert fw((STATE_NEW, ip_to_int("192.168.1.1"), 1, 1, 53, 17)) == ACCEPT

    def test_error_carries_dialect_and_line(self):
        bad = self.TEXT.replace("udp dport 53", "sctp dport 53")
        with pytest.raises(ParseError) as exc_info:
            parse_policy(bad, "nftables")
        assert "nftables" in str(exc_info.value)
        assert exc_info.value.line == 6

    def test_chain_selection(self):
        two = """\
table inet filter {
	chain input {
		type filter hook input priority 0; policy accept;
	}
	chain forward {
		type filter hook forward priority 0; policy drop;
	}
}
"""
        fw = parse_policy(two, "nftables", chain="input").to_firewall()
        assert fw((1, 2, 3, 4, 6)) == ACCEPT
        fw = parse_policy(two, "nftables", chain="forward").to_firewall()
        assert fw((1, 2, 3, 4, 6)) == DISCARD
        with pytest.raises(ParseError, match="chain"):
            parse_policy(two, "nftables")

    def test_log_statement(self):
        text = """\
table inet filter {
	chain forward {
		type filter hook forward priority 0; policy accept;
		ip saddr 203.0.113.0/24 log drop
	}
}
"""
        fw = parse_policy(text, "nftables").to_firewall()
        assert fw((ip_to_int("203.0.113.7"), 1, 1, 1, 6)) == DISCARD_LOG


class TestErrorProvenance:
    """Satellite: every import error names its dialect + original line."""

    CASES = [
        ("iptables", ":FORWARD ACCEPT [0:0]\n-A FORWARD -x foo -j ACCEPT\n", 2),
        ("cisco", "ip access-list extended demo\n permit sctp any any\n", 2),
        (
            "nftables",
            "table inet filter {\n\tchain forward {\n"
            "\t\ttype filter hook forward priority 0; policy accept;\n"
            "\t\tfrobnicate\n\t}\n}\n",
            4,
        ),
        ("native", 'firewall "x" schema=standard\nnonsense here\n', 2),
    ]

    @pytest.mark.parametrize("dialect,text,line", CASES)
    def test_error_names_dialect_and_line(self, dialect, text, line):
        with pytest.raises(ParseError) as exc_info:
            parse_policy(text, dialect)
        assert dialect in str(exc_info.value)
        assert exc_info.value.line == line


class TestGoldenDumps:
    @pytest.mark.parametrize("dialect", sorted(GOLDEN))
    def test_golden_parses_with_full_provenance(self, dialect):
        fw = parse_policy(GOLDEN[dialect].read_text(), dialect).to_firewall()
        assert len(fw.rules) >= 4
        assert all(rule.source_line is not None for rule in fw.rules)

    @pytest.mark.parametrize("dialect", sorted(GOLDEN))
    def test_golden_round_trips_through_every_dialect(self, dialect):
        ir = parse_policy(GOLDEN[dialect].read_text(), dialect)
        fw = ir.to_firewall()
        fingerprint = semantic_fingerprint(fw)
        for target in dialect_names():
            if target == "cisco" and fw.schema != standard_schema():
                continue  # Cisco ACLs cannot express connection state
            emitted = parse_policy(emit_policy(fw, target), target).to_firewall()
            assert semantic_fingerprint(emitted) == fingerprint, (
                f"{dialect} -> {target} round trip changed semantics"
            )
