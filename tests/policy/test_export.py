"""Tests for the iptables / Cisco-ACL exporters."""

import pytest

from repro.exceptions import PolicyError
from repro.fields import standard_schema, toy_schema
from repro.policy import (
    ACCEPT,
    ACCEPT_LOG,
    DISCARD,
    Firewall,
    Rule,
    to_cisco_acl,
    to_iptables,
)

SCHEMA = standard_schema()


def fw(*rules, **kwargs):
    return Firewall(SCHEMA, rules, **kwargs)


def r(decision, comment="", **conjuncts):
    return Rule.build(SCHEMA, decision, comment, **conjuncts)


BASIC = fw(
    r(DISCARD, "malicious", src_ip="224.168.0.0/16"),
    r(ACCEPT, "smtp in", dst_ip="192.168.0.1", dst_port=25, protocol="tcp"),
    r(ACCEPT),
    name="edge policy",
)


class TestIptables:
    def test_structure(self):
        text = to_iptables(BASIC)
        lines = text.strip().splitlines()
        assert lines[0] == "*filter"
        assert lines[1] == ":FORWARD ACCEPT [0:0]"
        assert lines[-1] == "COMMIT"

    def test_catchall_becomes_policy(self):
        text = to_iptables(fw(r(DISCARD)))
        assert ":FORWARD DROP" in text
        assert "-A FORWARD" not in text  # no per-rule lines needed

    def test_rule_rendering(self):
        text = to_iptables(BASIC)
        assert "-s 224.168.0.0/16" in text
        assert "-d 192.168.0.1" in text or "-d 192.168.0.1/32" in text
        assert "-p tcp" in text and "--dport 25" in text
        assert '--comment "malicious"' in text

    def test_port_without_protocol_expands(self):
        text = to_iptables(fw(r(DISCARD, dst_port=53), r(ACCEPT)))
        assert "-p tcp" in text and "-p udp" in text

    def test_port_range(self):
        text = to_iptables(fw(r(DISCARD, dst_port="1024-2048", protocol="tcp"), r(ACCEPT)))
        assert "--dport 1024:2048" in text

    def test_log_decision_adds_log_target(self):
        text = to_iptables(fw(r(ACCEPT_LOG, src_ip="10.0.0.0/8"), r(DISCARD)))
        assert "-j LOG" in text and "-j ACCEPT" in text

    def test_ports_skipped_for_non_port_protocols(self):
        # icmp with a dport constraint: no valid line can be emitted.
        text = to_iptables(fw(r(DISCARD, dst_port=8, protocol="icmp"), r(ACCEPT)))
        assert "-p icmp" not in text

    def test_chain_override(self):
        text = to_iptables(BASIC, chain="INPUT")
        assert ":INPUT ACCEPT" in text and "-A INPUT" in text

    def test_requires_standard_schema(self):
        other = toy_schema(9, 9)
        alien = Firewall(other, [Rule.build(other, ACCEPT)])
        with pytest.raises(PolicyError):
            to_iptables(alien)

    def test_multi_interval_sources_expand(self):
        rule = r(DISCARD, src_ip="10.0.0.0/8, 172.16.0.0/12")
        text = to_iptables(fw(rule, r(ACCEPT)))
        assert "-s 10.0.0.0/8" in text and "-s 172.16.0.0/12" in text


class TestCiscoAcl:
    def test_structure(self):
        text = to_cisco_acl(BASIC)
        lines = text.strip().splitlines()
        assert lines[0] == "ip access-list extended edge_policy"
        assert lines[-1].strip().startswith("permit ip any any")

    def test_wildcard_masks(self):
        text = to_cisco_acl(BASIC)
        assert "deny ip 224.168.0.0 0.0.255.255 any" in text

    def test_host_and_eq(self):
        text = to_cisco_acl(BASIC)
        assert "permit tcp any host 192.168.0.1 eq 25" in text

    def test_range(self):
        text = to_cisco_acl(
            fw(r(DISCARD, dst_port="1024-2048", protocol="tcp"), r(ACCEPT))
        )
        assert "range 1024 2048" in text

    def test_remark_from_comment(self):
        text = to_cisco_acl(BASIC)
        assert "remark malicious" in text

    def test_log_option(self):
        text = to_cisco_acl(fw(r(ACCEPT_LOG, src_ip="10.0.0.0/8"), r(DISCARD)))
        assert " log" in text

    def test_name_override(self):
        text = to_cisco_acl(BASIC, name="EDGE")
        assert "ip access-list extended EDGE" in text

    def test_requires_standard_schema(self):
        other = toy_schema(9, 9)
        alien = Firewall(other, [Rule.build(other, ACCEPT)])
        with pytest.raises(PolicyError):
            to_cisco_acl(alien)
