"""Unit and property tests for predicates."""

import pytest
from hypothesis import given

from repro.exceptions import PolicyError, SchemaError
from repro.fields import enumerate_universe, standard_schema, toy_schema
from repro.intervals import Interval, IntervalSet
from repro.policy import Predicate

from tests.conftest import predicates

SCHEMA = toy_schema(9, 9)


class TestConstruction:
    def test_match_all(self):
        p = Predicate.match_all(SCHEMA)
        assert p.is_match_all()
        assert p.size() == 100

    def test_empty_conjunct_rejected(self):
        with pytest.raises(PolicyError):
            Predicate(SCHEMA, (IntervalSet.empty(), IntervalSet.span(0, 9)))

    def test_out_of_domain_rejected(self):
        with pytest.raises(SchemaError):
            Predicate(SCHEMA, (IntervalSet.span(0, 10), IntervalSet.span(0, 9)))

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Predicate(SCHEMA, (IntervalSet.span(0, 9),))

    def test_from_fields_variants(self):
        p = Predicate.from_fields(
            SCHEMA,
            F1=IntervalSet.of((1, 2)),
            F2=5,
        )
        assert p.field_set("F1") == IntervalSet.of((1, 2))
        assert p.field_set("F2") == IntervalSet.single(5)

    def test_from_fields_interval_and_string(self):
        p = Predicate.from_fields(SCHEMA, F1=Interval(3, 4), F2="6-8")
        assert p.field_set("F1") == IntervalSet.of((3, 4))
        assert p.field_set("F2") == IntervalSet.of((6, 8))

    def test_from_fields_unknown_field(self):
        with pytest.raises(SchemaError):
            Predicate.from_fields(SCHEMA, nope=1)

    def test_from_fields_default_is_domain(self):
        p = Predicate.from_fields(SCHEMA, F1=1)
        assert p.field_set("F2") == IntervalSet.span(0, 9)


class TestSemantics:
    def test_matches(self):
        p = Predicate.from_fields(SCHEMA, F1="2-4", F2="7")
        assert p.matches((3, 7))
        assert not p.matches((5, 7))
        assert not p.matches((3, 8))

    def test_size(self):
        p = Predicate.from_fields(SCHEMA, F1="2-4", F2="7-8")
        assert p.size() == 6

    def test_is_simple(self):
        assert Predicate.from_fields(SCHEMA, F1="2-4").is_simple()
        assert not Predicate.from_fields(SCHEMA, F1="2-4, 7").is_simple()

    def test_intersect(self):
        a = Predicate.from_fields(SCHEMA, F1="0-5")
        b = Predicate.from_fields(SCHEMA, F1="3-9", F2="1")
        both = a.intersect(b)
        assert both is not None
        assert both.field_set("F1") == IntervalSet.of((3, 5))
        assert both.field_set("F2") == IntervalSet.single(1)

    def test_intersect_empty(self):
        a = Predicate.from_fields(SCHEMA, F1="0-2")
        b = Predicate.from_fields(SCHEMA, F1="5-9")
        assert a.intersect(b) is None

    def test_implies_and_overlaps(self):
        small = Predicate.from_fields(SCHEMA, F1="2-3", F2="5")
        big = Predicate.from_fields(SCHEMA, F1="0-5")
        assert small.implies(big)
        assert not big.implies(small)
        assert small.overlaps(big)

    def test_schema_mismatch(self):
        other = toy_schema(9, 9, 9)
        with pytest.raises(SchemaError):
            Predicate.match_all(SCHEMA).intersect(Predicate.match_all(other))

    def test_split_simple_partitions(self):
        p = Predicate.from_fields(SCHEMA, F1="0-1, 4-5", F2="0, 9")
        pieces = list(p.split_simple())
        assert len(pieces) == 4
        assert all(piece.is_simple() for piece in pieces)
        total = sum(piece.size() for piece in pieces)
        assert total == p.size()


class TestProperties:
    @given(predicates(SCHEMA), predicates(SCHEMA))
    def test_intersection_semantics(self, a, b):
        both = a.intersect(b)
        for packet in enumerate_universe(SCHEMA):
            expected = a.matches(packet) and b.matches(packet)
            actual = both is not None and both.matches(packet)
            assert expected == actual

    @given(predicates(SCHEMA), predicates(SCHEMA))
    def test_implies_semantics(self, a, b):
        if a.implies(b):
            for packet in enumerate_universe(SCHEMA):
                if a.matches(packet):
                    assert b.matches(packet)

    @given(predicates(SCHEMA))
    def test_size_counts_matching_packets(self, p):
        matching = sum(1 for packet in enumerate_universe(SCHEMA) if p.matches(packet))
        assert matching == p.size()


class TestPresentation:
    def test_describe_skips_all(self):
        p = Predicate.from_fields(SCHEMA, F2="5")
        assert p.describe() == "F2=5"

    def test_describe_match_all(self):
        assert Predicate.match_all(SCHEMA).describe() == "any"

    def test_describe_real_vocabulary(self):
        schema = standard_schema()
        p = Predicate.from_fields(schema, dst_ip="192.168.0.1", dst_port="smtp")
        assert "dst_ip=192.168.0.1" in p.describe()
        assert "dst_port=25 (smtp)" in p.describe()

    def test_hash_and_eq(self):
        a = Predicate.from_fields(SCHEMA, F1="1-2")
        b = Predicate.from_fields(SCHEMA, F1="1-2")
        assert a == b and hash(a) == hash(b)
