"""Tests for the iptables / Cisco importers, incl. export round trips."""

import pytest

from repro.analysis import equivalent
from repro.exceptions import ParseError
from repro.policy import (
    ACCEPT,
    ACCEPT_LOG,
    DISCARD,
    from_cisco_acl,
    from_iptables,
    to_cisco_acl,
    to_iptables,
)
from repro.fields import standard_schema
from repro.synth import SyntheticFirewallGenerator

SCHEMA = standard_schema()


class TestFromIptables:
    TEXT = """
    *filter
    :FORWARD DROP [0:0]
    -A FORWARD -s 224.168.0.0/16 -j DROP
    -A FORWARD -p tcp -d 192.168.0.1/32 --dport 25 -j ACCEPT -m comment --comment "smtp in"
    -A FORWARD -p udp --dport 53 -j ACCEPT
    COMMIT
    """

    def test_parses_rules_and_policy(self):
        fw = from_iptables(self.TEXT)
        assert len(fw) == 4  # 3 rules + chain policy catch-all
        assert fw.rules[-1].decision == DISCARD
        assert fw.rules[1].comment == "smtp in"

    def test_semantics(self):
        from repro.addr import ip_to_int

        fw = from_iptables(self.TEXT)
        mail = ip_to_int("192.168.0.1")
        bad = ip_to_int("224.168.3.4")
        assert fw((1, mail, 40000, 25, 6)) == ACCEPT
        assert fw((bad, mail, 40000, 25, 6)) == DISCARD
        assert fw((1, 2, 40000, 53, 17)) == ACCEPT
        assert fw((1, 2, 40000, 53, 6)) == DISCARD  # tcp dns not allowed

    def test_port_ranges(self):
        fw = from_iptables(
            ":FORWARD ACCEPT [0:0]\n-A FORWARD -p tcp --dport 1024:2048 -j DROP\n"
        )
        assert fw((1, 2, 3, 1500, 6)) == DISCARD
        assert fw((1, 2, 3, 80, 6)) == ACCEPT

    def test_other_chains_ignored(self):
        fw = from_iptables(
            ":FORWARD ACCEPT [0:0]\n-A INPUT -s 10.0.0.0/8 -j DROP\n"
        )
        assert len(fw) == 1  # just the policy catch-all

    def test_log_then_accept_folds(self):
        text = (
            ":FORWARD DROP [0:0]\n"
            "-A FORWARD -s 10.0.0.0/8 -j LOG\n"
            "-A FORWARD -s 10.0.0.0/8 -j ACCEPT\n"
        )
        fw = from_iptables(text)
        assert fw.rules[0].decision == ACCEPT_LOG

    @pytest.mark.parametrize(
        "bad",
        [
            "-A FORWARD -s 10.0.0.0/8",                   # no target
            "-A FORWARD --frobnicate 3 -j ACCEPT",        # unknown flag
            "-A FORWARD -j TEE",                          # unknown target
            "-A FORWARD -p sctp -j ACCEPT",               # unsupported proto
            "iptables is fun",                            # not a rule
        ],
    )
    def test_rejects_unsupported(self, bad):
        with pytest.raises(ParseError):
            from_iptables(bad)

    def test_export_import_round_trip(self):
        original = SyntheticFirewallGenerator(seed=61).generate(25)
        # Logged decisions don't survive the LOG-line folding heuristic in
        # general, and the generator doesn't emit them anyway.
        text = to_iptables(original)
        again = from_iptables(text)
        assert equivalent(original, again)


class TestFromCisco:
    TEXT = """
    ip access-list extended EDGE
     remark malicious domain
     deny ip 224.168.0.0 0.0.255.255 any
     permit tcp any host 192.168.0.1 eq 25
     permit udp any any range 33434 33534
     permit ip any any
    """

    def test_parses(self):
        fw = from_cisco_acl(self.TEXT)
        assert fw.name == "EDGE"
        assert len(fw) == 5  # 4 statements + implicit deny
        assert fw.rules[0].comment == "malicious domain"

    def test_semantics(self):
        from repro.addr import ip_to_int

        fw = from_cisco_acl(self.TEXT)
        bad = ip_to_int("224.168.1.1")
        mail = ip_to_int("192.168.0.1")
        assert fw((bad, mail, 1, 25, 6)) == DISCARD
        assert fw((1, mail, 1, 25, 6)) == ACCEPT
        assert fw((1, 2, 3, 33500, 17)) == ACCEPT
        assert fw((1, 2, 3, 80, 6)) == ACCEPT  # permit ip any any

    def test_implicit_deny(self):
        fw = from_cisco_acl("ip access-list extended X\n permit tcp any any eq 80\n")
        assert fw((1, 2, 3, 81, 6)) == DISCARD

    def test_log_keyword(self):
        fw = from_cisco_acl(
            "ip access-list extended X\n permit tcp any any eq 80 log\n"
        )
        assert fw.rules[0].decision == ACCEPT_LOG

    @pytest.mark.parametrize(
        "bad",
        [
            " frobnicate tcp any any",
            " permit quic any any",
            " permit ip 10.0.0.0 0.0.0.77 any",  # non-contiguous wildcard
            " permit tcp any any eq",            # truncated
        ],
    )
    def test_rejects_unsupported(self, bad):
        with pytest.raises(ParseError):
            from_cisco_acl(f"ip access-list extended X\n{bad}\n")

    def test_export_import_round_trip(self):
        original = SyntheticFirewallGenerator(seed=63).generate(25)
        text = to_cisco_acl(original)
        again = from_cisco_acl(text)
        assert equivalent(original, again)


class TestRoundTripProperty:
    """Export -> import preserves semantics across many seeded policies."""

    @pytest.mark.parametrize("seed", [71, 72, 73, 74])
    def test_iptables_round_trip(self, seed):
        original = SyntheticFirewallGenerator(seed=seed).generate(15)
        assert equivalent(original, from_iptables(to_iptables(original)))

    @pytest.mark.parametrize("seed", [81, 82, 83, 84])
    def test_cisco_round_trip(self, seed):
        original = SyntheticFirewallGenerator(seed=seed).generate(15)
        assert equivalent(original, from_cisco_acl(to_cisco_acl(original)))


class TestFromNftables:
    TEXT = """\
table inet filter {
	chain forward {
		type filter hook forward priority 0; policy drop;
		ip saddr 10.0.0.0/8 tcp dport 22 accept comment "ssh"
		ip protocol udp udp dport 53 accept
	}
}
"""

    def test_parses_rules_and_policy(self):
        from repro.policy import from_nftables

        fw = from_nftables(self.TEXT)
        assert len(fw) == 3  # 2 rules + chain policy catch-all
        assert fw.rules[-1].decision == DISCARD
        assert fw.rules[0].comment == "ssh"

    def test_semantics(self):
        from repro.addr import ip_to_int
        from repro.policy import from_nftables

        fw = from_nftables(self.TEXT)
        inside = ip_to_int("10.1.2.3")
        assert fw((inside, 1, 40000, 22, 6)) == ACCEPT
        assert fw((ip_to_int("11.0.0.1"), 1, 40000, 22, 6)) == DISCARD
        assert fw((1, 2, 40000, 53, 17)) == ACCEPT

    @pytest.mark.parametrize("seed", [91, 92, 93, 94])
    def test_nftables_round_trip(self, seed):
        from repro.policy import from_nftables, to_nftables

        original = SyntheticFirewallGenerator(seed=seed).generate(15)
        assert equivalent(original, from_nftables(to_nftables(original)))
