"""Tests for the canonical policy IR (:mod:`repro.policy.ir`)."""

import pytest

from repro.exceptions import PolicyError, SchemaError
from repro.fields import standard_schema
from repro.intervals import IntervalSet
from repro.policy import ACCEPT, DISCARD, Firewall, Rule
from repro.policy.ir import IRPolicy, IRRule, negate_match

SCHEMA = standard_schema()


class TestNegateMatch:
    def test_complement_within_domain(self):
        field = SCHEMA[SCHEMA.index_of("dst_port")]
        values = IntervalSet.span(0, 1023)
        negated = negate_match(values, field)
        assert negated == IntervalSet.span(1024, 65535)

    def test_double_negation_is_identity(self):
        field = SCHEMA[SCHEMA.index_of("src_ip")]
        values = IntervalSet.of((10, 20), (40, 50))
        assert negate_match(negate_match(values, field), field) == values

    def test_negating_full_domain_raises(self):
        field = SCHEMA[SCHEMA.index_of("protocol")]
        with pytest.raises(PolicyError):
            negate_match(field.domain_set, field)


class TestIRRule:
    def test_from_fields_fills_unnamed_fields_with_domain(self):
        rule = IRRule.from_fields(
            SCHEMA, {"dst_port": IntervalSet.single(25)}, ACCEPT
        )
        assert rule.matches[SCHEMA.index_of("dst_port")] == IntervalSet.single(25)
        for name in ("src_ip", "dst_ip", "src_port", "protocol"):
            index = SCHEMA.index_of(name)
            assert rule.matches[index] == SCHEMA[index].domain_set

    def test_from_fields_rejects_unknown_field(self):
        with pytest.raises(SchemaError):
            IRRule.from_fields(SCHEMA, {"nope": IntervalSet.single(1)}, ACCEPT)

    def test_provenance_survives_to_rule(self):
        ir_rule = IRRule.from_fields(
            SCHEMA,
            {"protocol": IntervalSet.single(6)},
            ACCEPT,
            comment="tcp only",
            source_line=17,
        )
        rule = ir_rule.to_rule(SCHEMA)
        assert rule.comment == "tcp only"
        assert rule.source_line == 17
        assert rule.decision == ACCEPT


class TestIRPolicy:
    def _policy(self):
        return IRPolicy(
            schema=SCHEMA,
            rules=(
                IRRule.from_fields(
                    SCHEMA, {"dst_port": IntervalSet.single(22)}, ACCEPT,
                    source_line=3,
                ),
                IRRule.from_fields(SCHEMA, {}, DISCARD, source_line=4),
            ),
            name="demo",
            dialect="native",
        )

    def test_match_width_validated(self):
        bad = IRRule(matches=(IntervalSet.single(1),), decision=ACCEPT)
        with pytest.raises(SchemaError):
            IRPolicy(schema=SCHEMA, rules=(bad,))

    def test_to_firewall_preserves_provenance(self):
        fw = self._policy().to_firewall()
        assert isinstance(fw, Firewall)
        assert [r.source_line for r in fw.rules] == [3, 4]
        assert fw.name == "demo"

    def test_empty_policy_rejected(self):
        with pytest.raises(PolicyError):
            IRPolicy(schema=SCHEMA, rules=()).to_firewall()

    def test_from_firewall_round_trip(self):
        fw = Firewall(
            SCHEMA,
            [
                Rule.build(SCHEMA, ACCEPT, dst_port=(0, 1023), comment="low"),
                Rule.build(SCHEMA, DISCARD),
            ],
            name="rt",
        )
        ir = IRPolicy.from_firewall(fw, dialect="native")
        assert ir.dialect == "native"
        back = ir.to_firewall()
        assert list(back.rules) == list(fw.rules)
        assert back.rules[0].comment == "low"
