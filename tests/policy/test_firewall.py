"""Unit and property tests for firewalls (rule lists, first-match)."""

import pytest
from hypothesis import given

from repro.exceptions import NotComprehensiveError, PolicyError, SchemaError
from repro.fields import enumerate_universe, toy_schema
from repro.policy import ACCEPT, DISCARD, Firewall, Rule

from tests.conftest import firewalls

SCHEMA = toy_schema(9, 9)


def fw(*rules, **kwargs):
    return Firewall(SCHEMA, rules, **kwargs)


def r(decision, **conjuncts):
    return Rule.build(SCHEMA, decision, **conjuncts)


class TestConstruction:
    def test_needs_rules(self):
        with pytest.raises(PolicyError):
            Firewall(SCHEMA, [])

    def test_comprehensiveness_enforced(self):
        with pytest.raises(NotComprehensiveError) as excinfo:
            fw(r(ACCEPT, F1="0-3"))
        assert excinfo.value.witness is not None

    def test_catchall_fast_path(self):
        firewall = fw(r(ACCEPT, F1="0-3"), r(DISCARD))
        assert firewall.is_comprehensive()
        assert firewall.has_catchall()

    def test_comprehensive_without_catchall(self):
        # Two rules covering complementary halves: no catch-all, but
        # comprehensive — the symbolic check must prove it.
        firewall = fw(r(ACCEPT, F1="0-4"), r(DISCARD, F1="5-9"))
        assert firewall.is_comprehensive()
        assert not firewall.has_catchall()

    def test_schema_mismatch_rejected(self):
        other = toy_schema(9, 9, 9)
        alien = Rule.build(other, ACCEPT)
        with pytest.raises(SchemaError):
            Firewall(SCHEMA, [alien])

    def test_witness_is_truly_unmatched(self):
        try:
            fw(r(ACCEPT, F1="1-9"), r(DISCARD, F2="1-9"))
        except NotComprehensiveError as exc:
            assert exc.witness == (0, 0)
        else:
            pytest.fail("expected NotComprehensiveError")


class TestFirstMatch:
    def test_first_match_wins(self):
        firewall = fw(
            r(ACCEPT, F1="0-5"),
            r(DISCARD, F1="3-9"),
            r(DISCARD),
        )
        assert firewall((4, 0)) == ACCEPT  # rule 1 shadows rule 2 here
        assert firewall((7, 0)) == DISCARD

    def test_first_match_index(self):
        firewall = fw(r(ACCEPT, F1="0-5"), r(DISCARD))
        assert firewall.first_match_index((3, 3)) == 0
        assert firewall.first_match_index((8, 3)) == 1

    def test_decisions_listing(self):
        firewall = fw(r(ACCEPT, F1="0-5"), r(ACCEPT, F2="1"), r(DISCARD))
        assert firewall.decisions() == (ACCEPT, DISCARD)


class TestEdits:
    def test_insert_and_remove(self):
        firewall = fw(r(DISCARD))
        grown = firewall.insert(0, r(ACCEPT, F1="0-3"))
        assert len(grown) == 2
        assert grown((1, 1)) == ACCEPT
        shrunk = grown.remove(0)
        assert shrunk((1, 1)) == DISCARD

    def test_prepend_append(self):
        firewall = fw(r(DISCARD))
        both = firewall.prepend(r(ACCEPT, F1="0")).append(r(ACCEPT))
        assert len(both) == 3
        assert both[0].decision == ACCEPT

    def test_replace(self):
        firewall = fw(r(ACCEPT, F1="0-3"), r(DISCARD))
        swapped = firewall.replace(0, r(DISCARD, F1="0-3"))
        assert swapped((1, 1)) == DISCARD

    def test_move(self):
        firewall = fw(r(ACCEPT, F1="0-5"), r(DISCARD, F1="3-9"), r(ACCEPT))
        moved = firewall.move(1, 0)
        assert moved((4, 0)) == DISCARD  # the discard rule now fires first

    def test_edit_bounds(self):
        firewall = fw(r(DISCARD))
        with pytest.raises(PolicyError):
            firewall.remove(5)
        with pytest.raises(PolicyError):
            firewall.insert(9, r(ACCEPT))
        with pytest.raises(PolicyError):
            firewall.move(0, 7)

    def test_remove_enforces_comprehensiveness(self):
        firewall = fw(r(ACCEPT, F1="0-3"), r(DISCARD))
        with pytest.raises(NotComprehensiveError):
            firewall.remove(1)

    def test_edits_return_new_objects(self):
        firewall = fw(r(DISCARD))
        assert firewall.prepend(r(ACCEPT)) is not firewall
        assert len(firewall) == 1  # unchanged


class TestValueSemantics:
    def test_syntactic_equality(self):
        a = fw(r(ACCEPT, F1="0-3"), r(DISCARD))
        b = fw(r(ACCEPT, F1="0-3"), r(DISCARD))
        assert a == b and hash(a) == hash(b)

    def test_name_not_semantic(self):
        a = fw(r(DISCARD), name="x")
        b = fw(r(DISCARD), name="y")
        assert a == b  # names are display-only

    def test_describe(self):
        firewall = fw(r(ACCEPT, F1="0-3"), r(DISCARD), name="demo")
        text = firewall.describe()
        assert "demo" in text and "r1:" in text and "r2:" in text


class TestProperties:
    @given(firewalls(SCHEMA))
    def test_every_packet_gets_a_decision(self, firewall):
        for packet in enumerate_universe(SCHEMA):
            decision = firewall(packet)
            assert decision is not None

    @given(firewalls(SCHEMA))
    def test_evaluation_agrees_with_manual_first_match(self, firewall):
        for packet in list(enumerate_universe(SCHEMA))[::7]:
            expected = None
            for rule in firewall.rules:
                if rule.matches(packet):
                    expected = rule.decision
                    break
            assert firewall(packet) == expected
