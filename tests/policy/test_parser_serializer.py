"""Tests for the textual policy format: parse, serialize, round-trip."""

import pytest
from hypothesis import given

from repro.exceptions import ParseError
from repro.fields import standard_schema, toy_schema
from repro.policy import (
    ACCEPT,
    DISCARD,
    dumps,
    loads,
    parse_rule,
    to_table,
)
from repro.synth import team_a_firewall, team_b_firewall

from tests.conftest import firewalls

SCHEMA = standard_schema()


class TestParseRule:
    def test_basic(self):
        rule = parse_rule("dst_ip=10.0.0.0/8, dst_port=smtp -> accept", SCHEMA)
        assert rule.decision == ACCEPT
        assert rule.predicate.field_set("dst_port").min() == 25

    def test_any(self):
        rule = parse_rule("any -> deny", SCHEMA)
        assert rule.predicate.is_match_all()
        assert rule.decision == DISCARD

    def test_comment_preserved(self):
        rule = parse_rule("any -> accept # default allow", SCHEMA)
        assert rule.comment == "default allow"

    def test_alternatives_with_pipe(self):
        rule = parse_rule("dst_port=80|443 -> accept", SCHEMA)
        assert rule.predicate.field_set("dst_port").count() == 2

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_rule("dst_port=80 accept", SCHEMA)

    def test_bad_decision(self):
        with pytest.raises(ParseError):
            parse_rule("any -> maybe", SCHEMA)

    def test_unknown_field(self):
        with pytest.raises(ParseError):
            parse_rule("nope=1 -> accept", SCHEMA)

    def test_duplicate_field(self):
        with pytest.raises(ParseError):
            parse_rule("dst_port=80, dst_port=443 -> accept", SCHEMA)

    def test_line_number_in_error(self):
        with pytest.raises(ParseError) as excinfo:
            loads("firewall schema=standard\nany -> nonsense\n")
        assert excinfo.value.line == 2


class TestLoads:
    DOC = """
    # sample policy
    firewall "edge" schema=standard
    src_ip=224.168.0.0/16 -> discard     # malicious domain
    dst_ip=192.168.0.1, dst_port=smtp, protocol=tcp -> accept
    any -> accept
    """

    def test_document(self):
        firewall = loads(self.DOC)
        assert firewall.name == "edge"
        assert len(firewall) == 3
        assert firewall.rules[0].comment == "malicious domain"

    def test_needs_schema(self):
        with pytest.raises(ParseError):
            loads("any -> accept")

    def test_explicit_schema_argument(self):
        schema = toy_schema(9, 9)
        firewall = loads("F1=0-3 -> deny\nany -> accept", schema)
        assert firewall((2, 2)) == DISCARD

    def test_empty_document(self):
        with pytest.raises(ParseError):
            loads("", SCHEMA)

    def test_unknown_schema_key(self):
        with pytest.raises(ParseError):
            loads('firewall schema=imaginary\nany -> accept')

    def test_header_variants(self):
        firewall = loads('firewall schema=interface\nany -> accept')
        assert firewall.name == ""
        assert len(firewall.schema) == 5


class TestRoundTrip:
    def test_paper_firewalls_round_trip(self):
        for original in (team_a_firewall(), team_b_firewall()):
            text = dumps(original)
            parsed = loads(text, original.schema)
            assert parsed.rules == original.rules

    def test_dumps_with_header(self):
        firewall = loads(TestLoads.DOC)
        text = dumps(firewall, schema_key="standard")
        reparsed = loads(text)
        assert reparsed.rules == firewall.rules
        assert reparsed.name == firewall.name

    @given(firewalls(toy_schema(9, 9)))
    def test_random_firewalls_round_trip(self, firewall):
        text = dumps(firewall)
        parsed = loads(text, firewall.schema)
        assert parsed.rules == firewall.rules

    def test_load_dump_file(self, tmp_path):
        from repro.policy import dump, load

        path = tmp_path / "policy.fw"
        original = team_b_firewall()
        dump(original, path, schema_key="interface")
        assert load(path).rules == original.rules


class TestToTable:
    def test_table_shape(self):
        table = to_table(team_a_firewall())
        lines = table.splitlines()
        assert lines[0] == "Team A"
        assert lines[1].split() == ["rule", "I", "S", "D", "N", "P", "decision"]
        assert len(lines) == 6  # title + header + separator + 3 rules

    def test_all_cells(self):
        table = to_table(team_a_firewall())
        assert "224.168.0.0/16" in table
        assert "all" in table
