"""Unit tests for decisions."""

import pytest

from repro.policy import (
    ACCEPT,
    ACCEPT_LOG,
    DISCARD,
    DISCARD_LOG,
    STANDARD_DECISIONS,
    Decision,
    parse_decision,
)


class TestDecision:
    def test_permits_flag(self):
        assert ACCEPT.permits and ACCEPT_LOG.permits
        assert not DISCARD.permits and not DISCARD_LOG.permits

    def test_short_codes(self):
        assert ACCEPT.short == "a" and DISCARD.short == "d"

    def test_str(self):
        assert str(ACCEPT) == "accept"
        assert str(DISCARD_LOG) == "discard+log"

    def test_custom_decisions_allowed(self):
        quarantine = Decision("quarantine", False)
        assert quarantine != DISCARD
        assert not quarantine.permits

    def test_standard_tuple(self):
        assert len(STANDARD_DECISIONS) == 4

    def test_hashable_value_semantics(self):
        assert Decision("accept", True) == ACCEPT
        assert hash(Decision("accept", True)) == hash(ACCEPT)


class TestParseDecision:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("accept", ACCEPT),
            ("ACCEPT", ACCEPT),
            ("a", ACCEPT),
            ("permit", ACCEPT),
            ("pass", ACCEPT),
            ("allow", ACCEPT),
            ("discard", DISCARD),
            ("deny", DISCARD),
            ("drop", DISCARD),
            ("reject", DISCARD),
            ("accept+log", ACCEPT_LOG),
            ("discard_log", DISCARD_LOG),
        ],
    )
    def test_spellings(self, text, expected):
        assert parse_decision(text) is expected

    def test_unknown(self):
        with pytest.raises(KeyError):
            parse_decision("shrug")
