"""Unit tests for :class:`Budget` and :class:`GuardContext`."""

import time

import pytest

from repro.exceptions import (
    BudgetExceededError,
    CancelledError,
    GuardError,
    ReproError,
)
from repro.guard import Budget, GuardContext


class TestBudget:
    def test_unlimited_has_no_limits(self):
        budget = Budget.unlimited()
        assert not budget.bounded()
        assert budget.describe() == "unlimited"

    def test_bounded_when_any_limit_set(self):
        assert Budget(deadline_s=1.0).bounded()
        assert Budget(max_nodes=10).bounded()
        assert Budget(max_splits=10).bounded()
        assert Budget(max_discrepancies=10).bounded()

    def test_describe_lists_set_limits(self):
        text = Budget(deadline_s=2.0, max_nodes=100_000).describe()
        assert "deadline=2.0s" in text and "max_nodes=100000" in text
        assert "max_splits" not in text

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": -1.0},
            {"max_nodes": -1},
            {"max_splits": -5},
            {"max_discrepancies": -2},
        ],
    )
    def test_negative_limits_rejected(self, kwargs):
        with pytest.raises(GuardError):
            Budget(**kwargs)

    def test_immutable(self):
        budget = Budget(max_nodes=10)
        with pytest.raises(Exception):
            budget.max_nodes = 20

    def test_zero_limits_are_legal(self):
        # A zero budget is a valid way to say "trip on the first tick".
        guard = GuardContext(Budget(max_nodes=0))
        with pytest.raises(BudgetExceededError):
            guard.tick_nodes()


class TestGuardContextCounters:
    def test_node_budget_trips_with_attributes(self):
        guard = GuardContext(Budget(max_nodes=10))
        for _ in range(10):
            guard.tick_nodes()
        with pytest.raises(BudgetExceededError) as info:
            guard.tick_nodes()
        exc = info.value
        assert exc.resource == "fdd-nodes"
        assert exc.spent == 11
        assert exc.limit == 10
        assert exc.progress["nodes_expanded"] == 11
        assert guard.exhausted == "fdd-nodes"

    def test_split_budget_trips(self):
        guard = GuardContext(Budget(max_splits=3))
        guard.tick_splits(3)
        with pytest.raises(BudgetExceededError) as info:
            guard.tick_splits()
        assert info.value.resource == "edges-split"

    def test_discrepancy_budget_trips(self):
        guard = GuardContext(Budget(max_discrepancies=2))
        guard.tick_discrepancies(2)
        with pytest.raises(BudgetExceededError) as info:
            guard.tick_discrepancies()
        assert info.value.resource == "discrepancies"

    def test_bulk_ticks_count_correctly(self):
        guard = GuardContext(Budget(max_nodes=100))
        guard.tick_nodes(60)
        guard.tick_nodes(40)
        assert guard.nodes_expanded == 100
        with pytest.raises(BudgetExceededError):
            guard.tick_nodes(1)

    def test_unlimited_guard_only_counts(self):
        guard = GuardContext()
        guard.tick_nodes(10_000)
        guard.tick_splits(10_000)
        guard.tick_discrepancies(10_000)
        assert guard.exhausted is None

    def test_budget_exceeded_is_repro_error(self):
        # CLI and callers catching the library's root type must see trips.
        assert issubclass(BudgetExceededError, ReproError)
        assert issubclass(CancelledError, ReproError)


class TestDeadlineAndCancellation:
    def test_deadline_trips_at_checkpoint(self):
        guard = GuardContext(Budget(deadline_s=0.0))
        time.sleep(0.01)
        with pytest.raises(BudgetExceededError) as info:
            guard.checkpoint("test.site")
        assert info.value.resource == "deadline"
        assert info.value.limit == 0.0

    def test_deadline_trips_amortized_in_hot_loop(self):
        guard = GuardContext(Budget(deadline_s=0.0), check_every=8)
        time.sleep(0.01)
        with pytest.raises(BudgetExceededError) as info:
            for _ in range(64):
                guard.tick_nodes()
        assert info.value.resource == "deadline"
        # The amortization window bounds how late the deadline fires.
        assert guard.nodes_expanded <= 8

    def test_cancel_raises_at_checkpoint_with_site(self):
        guard = GuardContext()
        guard.cancel()
        assert guard.cancelled
        with pytest.raises(CancelledError) as info:
            guard.checkpoint("construction.rule")
        assert "construction.rule" in str(info.value)

    def test_cancel_raises_in_hot_loop(self):
        guard = GuardContext(check_every=4)
        guard.cancel()
        with pytest.raises(CancelledError):
            for _ in range(16):
                guard.tick_nodes()

    def test_clock_accessors(self):
        guard = GuardContext(Budget(deadline_s=60.0))
        assert guard.elapsed_s() >= 0.0
        assert 0.0 < guard.remaining_s() <= 60.0
        assert GuardContext().remaining_s() is None


class TestReporting:
    def test_progress_witness(self):
        guard = GuardContext()
        guard.tick_nodes(5)
        guard.tick_splits(3)
        guard.tick_discrepancies(2)
        progress = guard.progress()
        assert progress["nodes_expanded"] == 5
        assert progress["edges_split"] == 3
        assert progress["discrepancies_found"] == 2
        assert progress["elapsed_s"] >= 0.0

    def test_outcome_within_budget(self):
        guard = GuardContext(Budget(max_nodes=100))
        guard.tick_nodes(10)
        outcome = guard.outcome()
        assert outcome["exhausted"] is None
        assert outcome["cancelled"] is False
        assert outcome["budget"] == "max_nodes=100"

    def test_outcome_after_trip(self):
        guard = GuardContext(Budget(max_nodes=1))
        with pytest.raises(BudgetExceededError):
            guard.tick_nodes(2)
        assert guard.outcome()["exhausted"] == "fdd-nodes"
