"""Fault injection: every guarded site must unwind cleanly.

The catalogue of sites lives in ``docs/robustness.md``.  For each site we
arm a :class:`FaultInjector`, drive the pipeline operation that visits
it, and assert that (a) the injected fault propagates as
:class:`FaultInjectedError` — no site swallows it — and (b) the inputs
are semantically untouched afterwards (their fingerprints match the
pre-fault values, and they still produce the same comparison output).
"""

import pytest

from repro.analysis.approximate import approximate_compare
from repro.bdd import compare_with_bdd
from repro.exceptions import FaultInjectedError
from repro.fdd import (
    compare_firewalls,
    construct_fdd,
    generate_firewall,
    make_semi_isomorphic,
)
from repro.fdd.canonical import semantic_fingerprint
from repro.fdd.fast import compare_fast, construct_fdd_fast
from repro.guard import FaultInjector, GuardContext
from repro.synth import team_a_firewall, team_b_firewall


class TestFaultInjector:
    def test_fires_on_first_visit_by_default(self):
        injector = FaultInjector()
        injector.arm("x")
        with pytest.raises(FaultInjectedError) as info:
            injector.fire("x")
        assert info.value.site == "x"
        assert injector.fired == ["x"]

    def test_countdown_delays_firing(self):
        injector = FaultInjector()
        injector.arm("x", after=2)
        injector.fire("x")
        injector.fire("x")
        with pytest.raises(FaultInjectedError):
            injector.fire("x")
        assert injector.visits["x"] == 3

    def test_fires_once_then_disarms(self):
        injector = FaultInjector()
        injector.arm("x")
        with pytest.raises(FaultInjectedError):
            injector.fire("x")
        injector.fire("x")  # no longer armed

    def test_disarm(self):
        injector = FaultInjector()
        injector.arm("x")
        injector.disarm("x")
        injector.fire("x")
        assert injector.fired == []

    def test_custom_exception_factory(self):
        injector = FaultInjector()
        injector.arm("x", exception=lambda site: RuntimeError(f"boom {site}"))
        with pytest.raises(RuntimeError, match="boom x"):
            injector.fire("x")

    def test_visits_recorded_for_unarmed_sites(self):
        injector = FaultInjector()
        injector.fire("y")
        injector.fire("y")
        assert injector.visits == {"y": 2}

    def test_visits_recorded_for_disarmed_sites_and_keyed_per_site(self):
        # The visits dict is keyed per site (each site counts its own
        # visits), and disarming never stops the counting: visits
        # doubles as a coverage map of which checkpoints a run reached.
        injector = FaultInjector()
        injector.arm("x")
        injector.disarm("x")
        injector.fire("x")
        injector.fire("x")
        injector.fire("y")
        assert injector.visits == {"x": 2, "y": 1}
        assert injector.fired == []


def _guard_with_fault(site: str, after: int = 0) -> GuardContext:
    injector = FaultInjector()
    injector.arm(site, after=after)
    return GuardContext(fault=injector)


# One representative driver per catalogued fault site.
SITE_DRIVERS = {
    "construction.rule": lambda fa, fb, guard: construct_fdd(fa, guard=guard),
    "shaping.start": lambda fa, fb, guard: make_semi_isomorphic(
        construct_fdd(fa), construct_fdd(fb), guard=guard
    ),
    "shaping.pair": lambda fa, fb, guard: make_semi_isomorphic(
        construct_fdd(fa), construct_fdd(fb), guard=guard
    ),
    "comparison.visit": lambda fa, fb, guard: compare_firewalls(fa, fb, guard=guard),
    "fast.rule": lambda fa, fb, guard: construct_fdd_fast(fa, guard=guard),
    "fast.product": lambda fa, fb, guard: compare_fast(fa, fb, guard=guard),
    "generation.start": lambda fa, fb, guard: generate_firewall(
        construct_fdd(fa), guard=guard
    ),
    "generation.visit": lambda fa, fb, guard: generate_firewall(
        construct_fdd(fa), guard=guard
    ),
    "bdd.encode": lambda fa, fb, guard: compare_with_bdd(fa, fb, guard=guard),
    "bdd.xor": lambda fa, fb, guard: compare_with_bdd(fa, fb, guard=guard),
    "bdd.cubes": lambda fa, fb, guard: compare_with_bdd(fa, fb, guard=guard),
    "approximate.sample": lambda fa, fb, guard: approximate_compare(
        fa, fb, samples=50, guard=guard
    ),
}


class TestGuardedSitesUnwindCleanly:
    @pytest.mark.parametrize("site", sorted(SITE_DRIVERS))
    def test_fault_propagates_and_inputs_survive(self, site):
        fw_a, fw_b = team_a_firewall(), team_b_firewall()
        before_a = semantic_fingerprint(fw_a)
        before_b = semantic_fingerprint(fw_b)
        baseline = compare_firewalls(fw_a, fw_b)

        with pytest.raises(FaultInjectedError) as info:
            SITE_DRIVERS[site](fw_a, fw_b, _guard_with_fault(site))
        assert info.value.site == site

        # Inputs unchanged: same fingerprints, same comparison output.
        assert semantic_fingerprint(fw_a) == before_a
        assert semantic_fingerprint(fw_b) == before_b
        assert compare_firewalls(fw_a, fw_b) == baseline

    @pytest.mark.parametrize("site", ["shaping.pair", "comparison.visit", "fast.product"])
    def test_mid_run_fault_also_unwinds(self, site):
        """The countdown places the failure mid-loop, not at the entry."""
        fw_a, fw_b = team_a_firewall(), team_b_firewall()
        baseline = compare_firewalls(fw_a, fw_b)
        with pytest.raises(FaultInjectedError):
            SITE_DRIVERS[site](fw_a, fw_b, _guard_with_fault(site, after=3))
        assert compare_firewalls(fw_a, fw_b) == baseline

    def test_every_catalogued_site_is_actually_visited(self):
        """Guard against the catalogue drifting from the code: an armed
        site that is never visited would make its injection test pass
        vacuously (no — it would fail, but check the visit counts too)."""
        fw_a, fw_b = team_a_firewall(), team_b_firewall()
        injector = FaultInjector()
        guard = GuardContext(fault=injector)
        construct_fdd(fw_a, guard=guard)
        compare_firewalls(fw_a, fw_b, guard=guard)
        make_semi_isomorphic(construct_fdd(fw_a), construct_fdd(fw_b), guard=guard)
        generate_firewall(construct_fdd(fw_a), guard=guard)
        construct_fdd_fast(fw_a, guard=guard)
        compare_fast(fw_a, fw_b, guard=guard)
        compare_with_bdd(fw_a, fw_b, guard=guard)
        approximate_compare(fw_a, fw_b, samples=10, guard=guard)
        assert set(SITE_DRIVERS) <= set(injector.visits)
