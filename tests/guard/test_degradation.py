"""Graceful degradation: approximate fallback, explosive inputs, CLI codes.

The acceptance test for the guarded layer: a synthetic policy pair whose
exact comparison would blow the ``(2n - 1)^d`` path bound to billions of
paths must, under a 2-second deadline, terminate promptly with either a
:class:`BudgetExceededError` or a flagged approximate report — never a
hang.  An outer watchdog thread enforces "promptly" independently of the
guard under test.
"""

import threading

import pytest

from repro.analysis import compare_with_fallback
from repro.analysis.approximate import approximate_compare
from repro.cli import main
from repro.exceptions import BudgetExceededError
from repro.fdd import compare_firewalls
from repro.fields import standard_schema
from repro.guard import Budget, GuardContext
from repro.intervals import Interval, IntervalSet
from repro.policy import ACCEPT, DISCARD, Firewall, Predicate, Rule, dump
from repro.synth import team_a_firewall, team_b_firewall


def explosive_pair() -> tuple[Firewall, Firewall]:
    """Two standard-schema firewalls whose exact comparison explodes.

    Each rule constrains every one of the five fields with a distinct
    two-interval set, so each append fragments every FDD path (the
    worst-case mechanism behind Theorem 1's ``(2n - 1)^d`` bound).  The
    two policies use different offsets so their shaped product explodes
    too.  Direct per-packet evaluation stays trivially cheap, which is
    what the sampling fallback relies on.
    """
    schema = standard_schema()

    def build(offset: int, decision_flip: bool) -> Firewall:
        rules = []
        for i in range(30):
            sets = []
            for f, field in enumerate(schema):
                step = (field.max_value // 64) or 1
                lo = (offset + i * (2 * f + 3)) * step % (field.max_value - 4 * step)
                sets.append(
                    IntervalSet(
                        [
                            Interval(lo, lo + step),
                            Interval(lo + 2 * step, lo + 3 * step),
                        ]
                    )
                )
            decision = ACCEPT if (i % 2 == 0) != decision_flip else DISCARD
            rules.append(Rule(Predicate(schema, tuple(sets)), decision))
        # Opposite catch-alls: nearly the whole universe disagrees, so the
        # sampling fallback is guaranteed witnesses while the exact product
        # still explodes on the fragmented rule bodies above.
        rules.append(
            Rule(Predicate.match_all(schema), ACCEPT if decision_flip else DISCARD)
        )
        return Firewall(schema, rules)

    return build(1, False), build(5, True)


def run_with_watchdog(fn, timeout_s: float):
    """Run ``fn`` on a daemon thread; fail the test if it outlives the
    watchdog (a hang must show up as a test failure, not a stuck CI job)."""
    result: dict = {}

    def target():
        try:
            result["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - relayed to the test
            result["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout=timeout_s)
    assert not thread.is_alive(), f"guarded run hung past {timeout_s}s watchdog"
    return result


class TestApproximateCompare:
    def test_finds_seeded_discrepancies(self):
        report = approximate_compare(
            team_a_firewall(), team_b_firewall(), samples=500, seed=3
        )
        assert report.approximate
        assert 0.0 < report.coverage < 1.0
        assert report.sampled_packets > 0
        # Every reported cell is a genuine single-packet disagreement.
        fw_a, fw_b = team_a_firewall(), team_b_firewall()
        for disc in report.discrepancies:
            packet = tuple(values.min() for values in disc.sets)
            assert fw_a(packet) == disc.decision_a
            assert fw_b(packet) == disc.decision_b
            assert disc.decision_a != disc.decision_b

    def test_deterministic_for_seed(self):
        a, b = team_a_firewall(), team_b_firewall()
        first = approximate_compare(a, b, samples=300, seed=7)
        second = approximate_compare(a, b, samples=300, seed=7)
        assert first.discrepancies == second.discrepancies
        assert first.sampled_packets == second.sampled_packets

    def test_empty_report_does_not_prove_equivalence(self):
        fw = team_a_firewall()
        report = approximate_compare(fw, fw, samples=50)
        assert not report.discrepancies
        assert not report.proves_equivalence()


class TestCompareWithFallback:
    def test_within_budget_is_exact(self):
        a, b = team_a_firewall(), team_b_firewall()
        report = compare_with_fallback(a, b, budget=Budget(max_nodes=1_000_000))
        assert not report.approximate
        assert report.coverage == 1.0
        assert list(report.discrepancies) == compare_firewalls(a, b)

    def test_trip_degrades_with_outcome_witness(self):
        a, b = team_a_firewall(), team_b_firewall()
        report = compare_with_fallback(a, b, budget=Budget(max_nodes=3))
        assert report.approximate
        assert report.exhausted == "fdd-nodes"
        assert report.outcome["nodes_expanded"] >= 3
        assert 0.0 < report.coverage < 1.0

    def test_exact_on_identical_inputs_proves_equivalence(self):
        fw = team_a_firewall()
        assert compare_with_fallback(fw, fw).proves_equivalence()


class TestExplosiveInputsTerminate:
    """The issue's acceptance scenario, with an outer watchdog."""

    def test_deadline_aborts_exact_comparison(self):
        fw_a, fw_b = explosive_pair()

        def attempt():
            guard = GuardContext(Budget(deadline_s=2.0), check_every=64)
            return compare_firewalls(fw_a, fw_b, guard=guard)

        result = run_with_watchdog(attempt, timeout_s=30.0)
        # Either the pipeline finished within its own deadline or — the
        # expected outcome — it tripped the budget.  A hang already failed
        # in the watchdog above.
        if "error" in result:
            assert isinstance(result["error"], BudgetExceededError)
            assert result["error"].resource in ("deadline", "fdd-nodes")

    def test_fallback_returns_flagged_report(self):
        fw_a, fw_b = explosive_pair()

        def attempt():
            return compare_with_fallback(
                fw_a, fw_b, budget=Budget(deadline_s=2.0), samples=400
            )

        result = run_with_watchdog(attempt, timeout_s=30.0)
        assert "error" not in result, f"fallback raised: {result.get('error')!r}"
        report = result["value"]
        if report.approximate:
            assert report.exhausted is not None
            assert report.coverage < 1.0
        # The two policies genuinely differ, and direct evaluation is
        # cheap, so sampling should surface at least one witness.
        assert len(report.discrepancies) > 0

    def test_node_budget_aborts_construction(self):
        fw_a, fw_b = explosive_pair()

        def attempt():
            guard = GuardContext(Budget(max_nodes=50_000))
            return compare_firewalls(fw_a, fw_b, guard=guard)

        result = run_with_watchdog(attempt, timeout_s=30.0)
        if "error" in result:
            assert isinstance(result["error"], BudgetExceededError)


@pytest.fixture
def policies(tmp_path):
    path_a = tmp_path / "a.fw"
    path_b = tmp_path / "b.fw"
    dump(team_a_firewall(), path_a, schema_key="interface")
    dump(team_b_firewall(), path_b, schema_key="interface")
    return str(path_a), str(path_b)


class TestCliExitCodes:
    def test_budget_exceeded_exits_3(self, policies, capsys):
        code = main(["compare", *policies, "--max-nodes", "2"])
        err = capsys.readouterr().err
        assert code == 3
        assert "budget exceeded" in err
        assert "progress at abort" in err

    def test_fallback_exits_4_with_flagged_output(self, policies, capsys):
        code = main(["compare", *policies, "--max-nodes", "2", "--approx-fallback"])
        out = capsys.readouterr().out
        assert code == 4
        assert "approximate" in out

    def test_generous_budget_behaves_exactly(self, policies, capsys):
        code = main(["compare", *policies, "--deadline", "60", "--max-nodes", "1000000"])
        assert code == 1
        assert "3 functional discrepancy region(s)" in capsys.readouterr().out

    def test_equivalent_fallback_inconclusive_exits_4(self, policies, capsys):
        code = main(
            ["equivalent", policies[0], policies[0], "--max-nodes", "2", "--approx-fallback"]
        )
        assert code == 4
        assert "NOT proven" in capsys.readouterr().out

    def test_equivalent_fallback_witness_exits_1(self, policies, capsys):
        code = main(
            ["equivalent", *policies, "--max-nodes", "2", "--approx-fallback"]
        )
        assert code == 1
        assert "witness" in capsys.readouterr().out

    def test_impact_budget_exceeded_exits_3(self, policies, capsys):
        code = main(["impact", *policies, "--max-nodes", "2"])
        assert code == 3
