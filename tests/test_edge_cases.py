"""Edge cases and failure injection across the library.

Deliberately hostile inputs: domain boundaries, single-value domains,
maximal interval counts, corrupted diagrams, and adversarial rule
shapes.  Anything that silently mis-decides a packet here would poison
every downstream analysis, so these paths get explicit coverage.
"""

import pytest

from repro.addr import IPV4_MAX, PORT_MAX
from repro.exceptions import FDDError, IntervalError, PolicyError
from repro.fdd import FDD, compare_firewalls, construct_fdd, make_semi_isomorphic
from repro.fdd.fast import compare_fast, construct_fdd_fast
from repro.fdd.node import InternalNode, TerminalNode
from repro.fields import enumerate_universe, standard_schema, toy_schema
from repro.intervals import Interval, IntervalSet
from repro.policy import ACCEPT, DISCARD, Firewall, Predicate, Rule


class TestDomainBoundaries:
    def test_single_value_domain(self):
        schema = toy_schema(0, 0)  # both domains are {0}
        fw = Firewall(schema, [Rule.build(schema, ACCEPT)])
        fdd = construct_fdd(fw)
        fdd.validate()
        assert fdd.evaluate((0, 0)) == ACCEPT

    def test_rules_at_domain_extremes(self):
        schema = standard_schema()
        fw = Firewall(
            schema,
            [
                Rule.build(schema, DISCARD, src_ip=0),
                Rule.build(schema, DISCARD, src_ip=IPV4_MAX),
                Rule.build(schema, DISCARD, dst_port=PORT_MAX),
                Rule.build(schema, ACCEPT),
            ],
        )
        fdd = construct_fdd_fast(fw)
        fdd.validate()
        assert fdd.evaluate((0, 1, 2, 3, 4)) == DISCARD
        assert fdd.evaluate((IPV4_MAX, 1, 2, 3, 4)) == DISCARD
        assert fdd.evaluate((5, 1, 2, PORT_MAX, 4)) == DISCARD
        assert fdd.evaluate((5, 1, 2, 3, 4)) == ACCEPT

    def test_adjacent_singletons(self):
        schema = toy_schema(9)
        fw = Firewall(
            schema,
            [Rule.build(schema, DISCARD, F1=str(v)) for v in (3, 4, 5)]
            + [Rule.build(schema, ACCEPT)],
        )
        fdd = construct_fdd(fw)
        # The three singleton edges must coalesce semantically.
        for v in range(10):
            expected = DISCARD if v in (3, 4, 5) else ACCEPT
            assert fdd.evaluate((v,)) == expected

    def test_full_domain_single_rule_conjuncts(self):
        schema = toy_schema(9, 9)
        explicit_all = Rule(
            Predicate(
                schema, (IntervalSet.span(0, 9), IntervalSet.span(0, 9))
            ),
            ACCEPT,
        )
        fw = Firewall(schema, [explicit_all])
        assert fw.has_catchall()


class TestAdversarialShapes:
    def test_maximally_fragmented_conjunct(self):
        """A rule whose conjunct is every even value (5 intervals)."""
        schema = toy_schema(9, 9)
        evens = IntervalSet.from_values([0, 2, 4, 6, 8])
        fw = Firewall(
            schema,
            [
                Rule(Predicate(schema, (evens, evens)), DISCARD),
                Rule.build(schema, ACCEPT),
            ],
        )
        fdd = construct_fdd(fw)
        fdd.validate()
        for packet in enumerate_universe(schema):
            assert fdd.evaluate(packet) == fw(packet)

    def test_interleaved_conflicts(self):
        """Alternating accept/discard stripes from conflicting rules."""
        schema = toy_schema(15)
        rules = []
        for k in range(8):
            rules.append(
                Rule.build(
                    schema,
                    ACCEPT if k % 2 == 0 else DISCARD,
                    F1=f"{k}-{15 - k}",
                )
            )
        rules.append(Rule.build(schema, DISCARD))
        fw = Firewall(schema, rules)
        fdd = construct_fdd(fw)
        for v in range(16):
            assert fdd.evaluate((v,)) == fw((v,))

    def test_comparing_identical_objects(self):
        schema = toy_schema(9, 9)
        fw = Firewall(schema, [Rule.build(schema, ACCEPT)])
        assert compare_firewalls(fw, fw) == []
        assert compare_fast(fw, fw).disputed_packet_count() == 0

    def test_totally_disjoint_policies(self):
        """Every packet disputed: the worst-case output size."""
        schema = toy_schema(9, 9)
        all_accept = Firewall(schema, [Rule.build(schema, ACCEPT)])
        all_discard = Firewall(schema, [Rule.build(schema, DISCARD)])
        discs = compare_firewalls(all_accept, all_discard)
        assert sum(d.size() for d in discs) == 100
        sa, sb = make_semi_isomorphic(
            construct_fdd(all_accept), construct_fdd(all_discard)
        )
        # Two constant functions shape into minimal semi-isomorphic form.
        assert sa.count_paths() == sb.count_paths() == 1


class TestCorruptedDiagrams:
    def test_evaluate_on_incomplete_node(self):
        schema = toy_schema(9)
        node = InternalNode(0)
        node.add_edge(IntervalSet.of((0, 4)), TerminalNode(ACCEPT))
        fdd = FDD(schema, node)
        with pytest.raises(FDDError, match="completeness"):
            fdd.evaluate((7,))

    def test_validate_catches_duplicate_coverage(self):
        schema = toy_schema(9)
        node = InternalNode(0)
        node.add_edge(IntervalSet.of((0, 5)), TerminalNode(ACCEPT))
        node.add_edge(IntervalSet.of((5, 9)), TerminalNode(ACCEPT))
        with pytest.raises(FDDError, match="consistency"):
            FDD(schema, node).validate()

    def test_interval_construction_guards(self):
        with pytest.raises(IntervalError):
            Interval(3, 2)
        with pytest.raises(IntervalError):
            IntervalSet.of((5, 1))

    def test_empty_firewall_rejected(self):
        schema = toy_schema(9)
        with pytest.raises(PolicyError):
            Firewall(schema, [])


class TestLargeValueSpaces:
    def test_full_ipv4_singletons(self):
        """Host rules at 0.0.0.0 and 255.255.255.255 behave."""
        schema = standard_schema()
        fw = Firewall(
            schema,
            [
                Rule.build(schema, DISCARD, src_ip="0.0.0.0"),
                Rule.build(schema, DISCARD, src_ip="255.255.255.255"),
                Rule.build(schema, ACCEPT),
            ],
        )
        assert fw((0, 1, 2, 3, 4)) == DISCARD
        assert fw((IPV4_MAX, 1, 2, 3, 4)) == DISCARD
        assert fw((1, 1, 2, 3, 4)) == ACCEPT

    def test_whole_space_minus_one_host(self):
        schema = standard_schema()
        hole = IntervalSet.span(0, IPV4_MAX) - IntervalSet.single(42)
        fw = Firewall(
            schema,
            [
                Rule.build(schema, DISCARD, src_ip=hole),
                Rule.build(schema, ACCEPT),
            ],
        )
        assert fw((42, 1, 2, 3, 4)) == ACCEPT
        assert fw((41, 1, 2, 3, 4)) == DISCARD
        fdd = construct_fdd_fast(fw)
        assert fdd.evaluate((42, 1, 2, 3, 4)) == ACCEPT

    def test_comparison_over_giant_disputed_space(self):
        """Disputed-packet counts handle > 2^64 without overflow."""
        schema = standard_schema()
        all_accept = Firewall(schema, [Rule.build(schema, ACCEPT)])
        all_discard = Firewall(schema, [Rule.build(schema, DISCARD)])
        count = compare_fast(all_accept, all_discard).disputed_packet_count()
        assert count == schema.universe_size()
        assert count > 2**64
